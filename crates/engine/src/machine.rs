//! The sequential resolution engine.
//!
//! [`Machine`] executes queries against a [`Program`] by SLD resolution with
//! chronological backtracking, first-argument indexing and a small set of
//! builtins (see [`crate::builtins`]). Since the arena rewrite it is
//! WAM-shaped in its memory discipline while remaining an interpreter over
//! precompiled clause templates:
//!
//! * **Terms** live in a bump-arena heap of tagged cells ([`crate::heap`]):
//!   no reference counting, no per-compound allocation, truncation to a heap
//!   mark as the garbage policy.
//! * **The continuation** is a contiguous goal stack rather than a shared
//!   cons-list: pushing and popping goals is a cursor move. A slot is either
//!   a materialized arena cell or a *compiled body step* (a clause template
//!   offset plus the activation's variable block and cut barrier — see
//!   [`crate::template::Step`]), so clause bodies, including their control
//!   constructs, execute without materializing control spines. Slots below a
//!   live choice point's height are part of that choice point's saved
//!   continuation; overwriting one records the old slot on a *goal trail* so
//!   backtracking can restore it (the protection check is a single integer
//!   compare, and deterministic execution never trails).
//! * **Choice points** are explicit records snapshotting the goal-stack
//!   height, trail mark, heap mark and clause-bucket cursor. Backtracking
//!   pops records iteratively.
//! * **Barriers** are explicit records too: negation, if-then-else
//!   conditions and `&` arms solve their sub-goal to its first solution
//!   *inside the same solve loop*, bounded below by a barrier record that
//!   says what success and failure of the sub-solve mean. The machine is
//!   fully iterative — no native Rust frame is consumed per barrier nesting
//!   level, so control nesting is bounded by memory, not by the call stack.
//!   (Native recursion remains only where it is bounded by *term depth*:
//!   unification, template materialization and answer extraction.)
//! * **Cut** (`!`) is real: each clause activation records the choice-point
//!   height at its call, and executing `!` prunes back to it — clamped to
//!   the innermost barrier, which makes cut local to `\+` and to
//!   if-then-else conditions and transparent to `;` and `->` branches,
//!   exactly the standard semantics.
//!
//! The quantities the experiments need are *operation counts* (resolutions,
//! unifications, grain tests) and the *fork-join task structure*, both of
//! which the machine records bit-identically to the seed interpreter.
//!
//! Parallel conjunctions (`&`) are executed with independent and-parallel
//! semantics: each arm is solved to its first solution in order, and the
//! conjunction fails if any arm fails (no backtracking across arms). The
//! fork/join structure and each arm's work are recorded in a
//! [`crate::tasktree::TaskTree`] for the multiprocessor simulator. With a
//! parallel hook installed ([`Machine::run_goal_par`], [`crate::par`]),
//! each conjunction is first offered to the hook — after an optional
//! cell-level granularity pre-screen — and may execute on real worker
//! threads instead, with the answers joined back deterministically.

use crate::builtins::{self, Builtin};
use crate::cost::{CostModel, Counters};
use crate::error::{BudgetKind, EngineError, EngineResult};
use crate::heap::HCell;
use crate::par::{CellGuard, CellGuards, GuardMeasure, ParDecision, ParHook};
use crate::tasktree::{TaskId, TaskRecorder, TaskTree};
use crate::template::{Cell, ClauseTemplate, Seq, Step};
use granlog_ir::symbol::well_known::{self, WellKnownSymbols};
use granlog_ir::{parser, ClauseId, FastMap, IndexKey, PredId, Predicate, Program, Symbol, Term};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How candidate clauses are selected for a user-predicate call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClauseSelection {
    /// Use the program's persistent first-argument index: one hash probe
    /// returning a borrowed candidate slice (the default).
    Indexed,
    /// Reference semantics: linearly scan the predicate's clauses on every
    /// call, filtering by first-argument principal functor (the seed
    /// engine's behaviour). Kept for differential testing — it must agree
    /// with [`ClauseSelection::Indexed`] on outcome, bindings, counters and
    /// clause-trial order.
    LinearScan,
}

/// Configuration of a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Maximum number of head-unification attempts before aborting with
    /// [`EngineError::StepLimit`].
    pub max_steps: u64,
    /// Maximum engine depth: bounds both the goal-stack height (pending
    /// goals along one path) and the nesting of isolation barriers
    /// (negation, conditions, parallel arms).
    pub max_depth: usize,
    /// The cost model converting operations into work units.
    pub cost_model: CostModel,
    /// Candidate-clause selection strategy.
    pub clause_selection: ClauseSelection,
    /// Enable the per-predicate port profiler (see [`crate::profile`]).
    /// Off by default: the disabled configuration costs one null-check per
    /// clause-selection entry and leaves operation counters bit-identical
    /// to an unprofiled machine.
    pub profile: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            max_steps: 200_000_000,
            max_depth: 4_000_000,
            cost_model: CostModel::default(),
            clause_selection: ClauseSelection::Indexed,
            profile: false,
        }
    }
}

/// A resource budget for one solve *slice* (see [`Machine::solve_goal`]).
///
/// Budgets are checked at **resolution boundaries** — the top of the solve
/// loop, between goals — where every machine structure (arena, goal stack,
/// trail, choice points, barriers) is in a consistent state. A slice may
/// therefore overshoot a limit by the work of one goal execution (at most
/// one clause activation's worth of head attempts and arena growth) before
/// the check fires; the checks only *read* the operation counters, so
/// budgeted-and-resumed runs stay counter-identical to uninterrupted ones.
///
/// Exhausting `steps` or `wall` on a `preemptible` budget yields a resumable
/// [`SolveToken`]; on a non-preemptible budget it is a typed
/// [`EngineError::BudgetExceeded`]. Exhausting `heap_cells` is **always** the
/// typed error — waiting cannot reclaim memory, so there is nothing useful a
/// resume could do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum head-unification attempts (the engine's step currency) this
    /// slice may perform before it ends; `None` is unlimited. Clamped to at
    /// least 1 so every slice makes progress.
    pub steps: Option<u64>,
    /// Maximum arena occupancy in cells (an absolute bound on the term heap,
    /// not a per-slice delta); `None` is unlimited.
    pub heap_cells: Option<usize>,
    /// Wall-clock allowance for this slice; `None` is unlimited. Polled
    /// every few hundred resolutions, so enforcement granularity is coarser
    /// than for `steps`.
    pub wall: Option<Duration>,
    /// Whether exhausting `steps`/`wall` suspends the solve
    /// ([`Solve::Yield`]) instead of erroring.
    pub preemptible: bool,
}

impl Budget {
    /// No limits: the solve runs to completion, as [`Machine::run_goal`]
    /// always has.
    pub const UNLIMITED: Budget = Budget {
        steps: None,
        heap_cells: None,
        wall: None,
        preemptible: false,
    };

    /// A preemptible slice of `n` steps — the quantum of a scheduler that
    /// interleaves many queries on one machine pool.
    pub fn steps(n: u64) -> Budget {
        Budget {
            steps: Some(n),
            preemptible: true,
            ..Budget::UNLIMITED
        }
    }

    /// A hard (non-preemptible) limit of `n` steps: exhaustion is
    /// [`EngineError::BudgetExceeded`], and the machine unwinds to an empty
    /// run state.
    pub fn hard_steps(n: u64) -> Budget {
        Budget {
            steps: Some(n),
            ..Budget::UNLIMITED
        }
    }

    /// A hard arena bound of `cells`; exhaustion is always an error.
    pub fn heap_cells(cells: usize) -> Budget {
        Budget {
            heap_cells: Some(cells),
            ..Budget::UNLIMITED
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::UNLIMITED
    }
}

/// What a budgeted solve slice produced: the finished outcome, or a token to
/// resume with.
#[must_use = "a yielded solve holds machine state; resume it or start a new query"]
#[derive(Debug)]
pub enum Solve {
    /// The query ran to completion (success or failure) within the budget.
    Done(QueryOutcome),
    /// The budget ran out first; the machine is suspended mid-solve and
    /// [`Machine::resume`] continues it.
    Yield(SolveToken),
}

impl Solve {
    /// The finished outcome, if the slice completed.
    pub fn into_done(self) -> Option<QueryOutcome> {
        match self {
            Solve::Done(outcome) => Some(outcome),
            Solve::Yield(_) => None,
        }
    }
}

/// Proof of a suspended solve, issued by [`Solve::Yield`] and consumed by
/// [`Machine::resume`]. Deliberately neither `Clone` nor `Copy`: there is
/// exactly one live token per suspended solve, and starting a new query
/// invalidates it (resuming with a stale token is an error, not corruption).
#[must_use = "a suspended solve must be resumed (or superseded by a new query)"]
#[derive(Debug)]
pub struct SolveToken {
    /// The solve generation this token belongs to.
    gen: u64,
}

/// A [`Budget`] lowered to absolute thresholds for one slice, precomputed so
/// the solve loop's budget check is a guarded pair of integer compares.
struct SliceLimits {
    /// Any limit set at all? `false` makes the whole check one branch.
    active: bool,
    /// Absolute `counters.head_attempts` value at which the slice ends.
    step_target: u64,
    /// The budget's step count, for error reporting.
    steps_limit: u64,
    /// Absolute arena-size bound in cells.
    heap_limit: usize,
    /// Wall-clock deadline of the slice.
    deadline: Option<Instant>,
    /// The budget's wall allowance, for the adaptive poll-stride halving.
    wall_allowance: Duration,
    /// The budget's wall allowance in ms, for error reporting.
    wall_ms: u64,
    preemptible: bool,
}

impl SliceLimits {
    fn new(budget: &Budget, counters: &Counters) -> SliceLimits {
        SliceLimits {
            active: budget.steps.is_some() || budget.heap_cells.is_some() || budget.wall.is_some(),
            step_target: match budget.steps {
                Some(n) => counters.head_attempts.saturating_add(n.max(1)),
                None => u64::MAX,
            },
            steps_limit: budget.steps.unwrap_or(u64::MAX),
            heap_limit: budget.heap_cells.unwrap_or(usize::MAX),
            deadline: budget.wall.map(|allowance| Instant::now() + allowance),
            wall_allowance: budget.wall.unwrap_or(Duration::ZERO),
            wall_ms: budget.wall.map(|d| d.as_millis() as u64).unwrap_or(0),
            preemptible: budget.preemptible,
        }
    }
}

/// Initial wall-clock poll stride: the deadline is checked once per
/// `mask + 1` resolutions. Coarse while most of the budget remains.
const INITIAL_WALL_POLL_MASK: u32 = 0x3FF;

/// Floor of the adaptive stride: never poll more often than every 16
/// resolutions, so `Instant::now` stays off the hot path even close to the
/// deadline.
const MIN_WALL_POLL_MASK: u32 = 0xF;

/// Adaptive wall-poll stride: once less than half the allowance remains,
/// each poll halves the stride (down to [`MIN_WALL_POLL_MASK`]), so the
/// overshoot past the deadline shrinks as the deadline approaches instead
/// of staying a full coarse stride wide.
fn next_wall_poll_mask(mask: u32, remaining: Duration, allowance: Duration) -> u32 {
    if mask > MIN_WALL_POLL_MASK && remaining + remaining < allowance {
        mask >> 1
    } else {
        mask
    }
}

/// What [`Machine::run`] returned control for.
enum RunState {
    /// The query finished with this success flag.
    Done(bool),
    /// A preemptible budget ran out at a resolution boundary.
    Suspended,
}

/// The outcome of running a query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Did the query succeed?
    pub succeeded: bool,
    /// Bindings of the query's named variables (resolved), in source order.
    pub bindings: Vec<(Symbol, Term)>,
    /// Raw operation counters.
    pub counters: Counters,
    /// Total work in cost-model units.
    pub work: f64,
    /// The recorded fork-join task tree.
    pub task_tree: TaskTree,
}

impl QueryOutcome {
    /// The binding of a variable by name, if any.
    pub fn binding(&self, name: &str) -> Option<&Term> {
        self.bindings
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, t)| t)
    }
}

/// Peak-usage statistics of the machine's memory structures, reset per
/// query. Diagnostic only (used by `alloc_profile`); maintained off the
/// per-goal hot path except for one compare in the goal push.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// High-water mark of the arena heap, in cells.
    pub heap_high_water: usize,
    /// High-water mark of the goal stack, in goals.
    pub goal_stack_high_water: usize,
    /// Deepest simultaneously-live choice-point count.
    pub max_choice_depth: usize,
    /// High-water mark of the binding trail, in entries.
    pub trail_high_water: usize,
    /// Deepest simultaneously-live barrier count (nesting of negations,
    /// if-then-else conditions and `&` arms).
    pub max_barrier_depth: usize,
}

/// What a non-control goal resolves to: a builtin or a user predicate. The
/// machine builds one `(functor, arity)` → `CallTarget` map at program load,
/// so the solve loop identifies a goal with a single fast-hash probe instead
/// of a missed builtin-table probe followed by a `BTreeMap` predicate walk.
#[derive(Debug, Clone, Copy)]
enum CallTarget<'p> {
    Builtin(Builtin),
    User(&'p Predicate),
}

/// The candidate-clause list of one call, owned by its choice point while
/// alternatives remain. The indexed path borrows the program's persistent
/// bucket; the reference linear scan owns its filtered scratch list.
enum Cands<'p> {
    Indexed(&'p [ClauseId]),
    Scanned(Box<[ClauseId]>),
}

impl Cands<'_> {
    fn as_slice(&self) -> &[ClauseId] {
        match self {
            Cands::Indexed(s) => s,
            Cands::Scanned(v) => v,
        }
    }
}

/// One goal-stack slot: either a materialized arena cell (queries, metacalls
/// and runtime-classified control arms) or a compiled body step of a clause
/// activation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Goal {
    /// A materialized goal cell, dispatched by run-time inspection.
    Cell(HCell),
    /// A compiled body step, executed straight off its clause template.
    Step(StepRef),
}

/// A compiled body step plus its activation context: the clause template it
/// belongs to, the activation's variable block in the arena, and the cut
/// barrier (choice-point height at the activating call, which `!` prunes
/// to). `Copy` and four words — goal-stack slots stay cheap to move.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StepRef {
    clause: u32,
    step: u32,
    var_base: u32,
    cut: u32,
}

/// A goal sequence not yet on the goal stack: what a choice point or barrier
/// schedules when it fires (a disjunction's right arm, an if-then-else
/// branch). Compiled sequences carry their activation context; cell goals
/// are pushed as-is.
#[derive(Debug, Clone, Copy)]
enum Pend {
    /// A materialized goal cell.
    Cell(HCell),
    /// A compiled step sequence of a clause activation.
    Seq {
        clause: u32,
        seq: Seq,
        var_base: u32,
        cut: u32,
    },
}

/// What to run when a choice point is resumed by backtracking.
enum Resume<'p> {
    /// Retry the pending call's remaining candidate clauses from `cursor`.
    Clauses {
        goal: HCell,
        cands: Cands<'p>,
        cursor: usize,
    },
    /// Run the saved alternative (the right arm of a disjunction).
    Alt { pend: Pend },
}

/// An explicit choice point: everything needed to restore the machine to the
/// moment the choice was made and continue with the next alternative.
struct ChoicePoint<'p> {
    resume: Resume<'p>,
    /// Goal-stack height at creation — the saved continuation.
    goal_top: usize,
    /// The machine's goal-protection watermark before this record was
    /// pushed; restored when the record is popped or committed away.
    protect_prev: usize,
    trail_mark: usize,
    heap_mark: usize,
    goal_trail_mark: usize,
}

/// Where the arms of an in-flight parallel conjunction come from.
#[derive(Debug, Clone, Copy)]
enum ArmSource {
    /// Compiled arm sequences: `template.par_arms()[arms_at + k]` for arm
    /// `k`, run with the stored activation context.
    Compiled {
        clause: u32,
        arms_at: u32,
        var_base: u32,
        cut: u32,
    },
    /// Run-time flattened arm cells living in the machine's `arm_scratch`
    /// buffer at `base .. base + count`.
    Scratch { base: u32 },
}

/// Progress of an in-flight parallel conjunction: which arm is running, how
/// many remain, and the task ids recorded for them.
#[derive(Debug, Clone, Copy)]
struct ParState {
    arms: ArmSource,
    /// Total number of arms (the fork arity).
    count: u32,
    /// Index of the next arm to start; `next - 1` is currently running.
    next: u32,
    /// Task id of arm 0 (fork children get consecutive ids).
    first_task: TaskId,
}

/// What the completion (success or failure) of a barrier's sub-solve means.
enum BarrierExit {
    /// Negation as failure: success of the inner goal fails the `\+`,
    /// failure succeeds it; bindings are undone either way.
    Not,
    /// An if-then(-else) condition: on success, commit the condition's
    /// choice points and run `then_` (keeping its bindings); on failure,
    /// undo and run `else_` — or fail the construct if there is none.
    Cond { then_: Pend, else_: Option<Pend> },
    /// One arm of a parallel conjunction: on success, commit and start the
    /// next arm (or finish); on failure, fail the whole conjunction.
    Par(ParState),
}

/// An isolation barrier: the explicit record bounding a sub-solve (negation,
/// if-then-else condition, `&` arm) from below. While a barrier is live, the
/// solve loop treats `goal_base` as its success height and `cp_base` as its
/// backtracking floor; `trail_mark`/`heap_mark` are the undo marks the
/// construct's semantics may need on exit. Replaces the native-stack
/// recursion the engine used per nesting level before the barrier stack.
struct Barrier {
    exit: BarrierExit,
    /// Goal-stack height when pushed — the sub-solve succeeds when the
    /// stack is back down to this height.
    goal_base: usize,
    /// Choice-point height when pushed — backtracking inside the sub-solve
    /// never unwinds below this floor.
    cp_base: usize,
    trail_mark: usize,
    heap_mark: usize,
}

/// The resolution engine.
pub struct Machine<'p> {
    program: &'p Program,
    config: MachineConfig,
    /// Precompiled clause templates, indexed by [`ClauseId`]. Shared via
    /// `Arc` so clause activation can borrow a template while mutating the
    /// machine (one refcount bump per query, not per term), and so several
    /// machines — one per worker thread of a parallel executor — can share
    /// one compiled program.
    templates: Arc<[ClauseTemplate]>,
    /// `(functor, arity)` → call target, built once at load. Builtins shadow
    /// user predicates of the same name and arity, as they always have.
    dispatch: FastMap<(Symbol, usize), CallTarget<'p>>,
    /// The arena term heap (see [`crate::heap`]).
    pub(crate) heap: Vec<HCell>,
    /// Bound-variable trail: indices of cells to restore to self-references.
    trail: Vec<u32>,
    /// The contiguous goal stack. `goal_top` is the logical height; slots at
    /// and above it are dead but kept initialized so backtracking can
    /// re-expose them by moving the cursor.
    goal_stack: Vec<Goal>,
    goal_top: usize,
    /// Saved `(slot, old goal)` pairs for goal-stack slots overwritten below
    /// the protection watermark (i.e. slots belonging to a live choice
    /// point's saved continuation).
    goal_trail: Vec<(u32, Goal)>,
    /// Maximum goal height any live choice point needs preserved; 0 when
    /// execution is deterministic, in which case pushes never trail.
    protect: usize,
    choice_points: Vec<ChoicePoint<'p>>,
    /// The barrier stack (see [`Barrier`]).
    barriers: Vec<Barrier>,
    /// The innermost live barrier's `goal_base`, cached (0 with no barrier):
    /// the solve loop's success height.
    base_goal: usize,
    /// The innermost live barrier's `cp_base`, cached (0 with no barrier):
    /// the backtracking floor, and the clamp for metacalled cuts.
    base_cp: usize,
    /// Reusable scratch for flattening `&` conjunctions into arms (indexed
    /// by a per-fork base so nested forks share it without clearing).
    arm_scratch: Vec<HCell>,
    pub(crate) counters: Counters,
    recorder: TaskRecorder,
    stats: MachineStats,
    /// Names of the current query's variables, kept on the machine (rather
    /// than a native frame) so the answer can be extracted after any number
    /// of preemption slices.
    query_vars: Vec<Symbol>,
    /// Monotonic solve generation: a [`SolveToken`] is valid only for the
    /// generation that issued it, so tokens leaked across queries are
    /// rejected instead of resuming the wrong solve.
    solve_gen: u64,
    /// Whether a preempted solve is in flight (a token is outstanding).
    suspended: bool,
    /// Per-predicate port profiler; `Some` only when
    /// [`MachineConfig::profile`] is set, so the disabled path is one
    /// null-check at each clause-selection entry.
    profiler: Option<Box<crate::profile::Profiler>>,
}

impl<'p> Machine<'p> {
    /// Creates a machine with the default configuration.
    pub fn new(program: &'p Program) -> Self {
        Machine::with_config(program, MachineConfig::default())
    }

    /// Creates a machine with an explicit configuration.
    ///
    /// Program load happens here: every clause is compiled once into its
    /// [`ClauseTemplate`], and the goal-dispatch map (builtins and user
    /// predicates) is built, so the solve loop never revisits the IR and
    /// identifies every goal with one hash probe.
    pub fn with_config(program: &'p Program, config: MachineConfig) -> Self {
        let templates: Arc<[ClauseTemplate]> = crate::template::compile_program(program).into();
        Machine::with_templates(program, config, templates)
    }

    /// Creates a machine over an already-compiled template array (as
    /// returned by [`Machine::templates`]), skipping per-machine clause
    /// compilation. This is how a parallel executor builds one machine per
    /// worker thread cheaply: the program is compiled once and the `Arc` is
    /// shared.
    ///
    /// `templates` must be the compilation of `program`
    /// ([`crate::template::compile_program`]); clause ids index into it.
    ///
    /// # Panics
    ///
    /// Panics if the template array's length does not match the program's
    /// clause count.
    pub fn with_templates(
        program: &'p Program,
        config: MachineConfig,
        templates: Arc<[ClauseTemplate]>,
    ) -> Self {
        assert_eq!(
            templates.len(),
            program.clauses().len(),
            "template array does not match the program"
        );
        let mut dispatch: FastMap<(Symbol, usize), CallTarget<'p>> = FastMap::default();
        for predicate in program.predicates() {
            dispatch.insert(
                (predicate.id.name, predicate.id.arity),
                CallTarget::User(predicate),
            );
        }
        for (&key, &builtin) in builtins::table() {
            dispatch.insert(key, CallTarget::Builtin(builtin));
        }
        Machine {
            program,
            config,
            templates,
            dispatch,
            heap: Vec::new(),
            trail: Vec::new(),
            goal_stack: Vec::new(),
            goal_top: 0,
            goal_trail: Vec::new(),
            protect: 0,
            choice_points: Vec::new(),
            barriers: Vec::new(),
            base_goal: 0,
            base_cp: 0,
            arm_scratch: Vec::new(),
            counters: Counters::default(),
            recorder: TaskRecorder::new(),
            stats: MachineStats::default(),
            query_vars: Vec::new(),
            solve_gen: 0,
            suspended: false,
            profiler: if config.profile {
                Some(Box::default())
            } else {
                None
            },
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// The compiled clause templates, shareable across machines (and across
    /// threads) via [`Machine::with_templates`].
    pub fn templates(&self) -> Arc<[ClauseTemplate]> {
        Arc::clone(&self.templates)
    }

    /// The operation counters accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Peak memory-structure usage of the most recent query.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Per-predicate port counters for the most recent query, in a
    /// deterministic order (descending entries, then name). `None` unless
    /// the machine was configured with [`MachineConfig::profile`].
    pub fn profile(&self) -> Option<Vec<(PredId, crate::profile::PredProfile)>> {
        self.profiler.as_ref().map(|p| p.rows())
    }

    /// Parses and runs a query (e.g. `"fib(15, X)"`), returning its outcome.
    ///
    /// The machine's heap, counters and task recording are reset first, so a
    /// machine can be reused for several queries.
    ///
    /// # Errors
    ///
    /// Returns an error if the query does not parse or execution hits a limit
    /// or runtime error.
    pub fn run_query(&mut self, query: &str) -> EngineResult<QueryOutcome> {
        let (goal, var_names) = parser::parse_term(query).map_err(|e| EngineError::TypeError {
            builtin: "query",
            message: e.to_string(),
        })?;
        self.run_goal(&goal, &var_names)
    }

    /// Runs an already-parsed goal term whose variables are numbered
    /// `0..var_names.len()`.
    ///
    /// # Errors
    ///
    /// Returns an error if execution hits a limit or runtime error.
    pub fn run_goal(&mut self, goal: &Term, var_names: &[Symbol]) -> EngineResult<QueryOutcome> {
        self.run_goal_par(goal, var_names, None)
    }

    /// [`Machine::run_goal`] with a parallel-execution hook: every `&`
    /// conjunction the solve loop reaches is first offered to `hook` (see
    /// [`crate::par`]). With `None` this *is* `run_goal` — the machine runs
    /// every conjunction inline.
    ///
    /// The goal's variables must be numbered `0..n`; they occupy the bottom
    /// of the arena, so after the call `var i` can be read back with
    /// [`Machine::resolve_var`] — which is how a parallel executor extracts
    /// an arm's answer without naming its variables.
    ///
    /// # Errors
    ///
    /// Returns an error if execution hits a limit or runtime error (local or
    /// inside a spawned arm).
    pub fn run_goal_par(
        &mut self,
        goal: &Term,
        var_names: &[Symbol],
        hook: Option<&dyn ParHook>,
    ) -> EngineResult<QueryOutcome> {
        match self.solve_goal(goal, var_names, hook, &Budget::UNLIMITED)? {
            Solve::Done(outcome) => Ok(outcome),
            Solve::Yield(_) => unreachable!("an unlimited budget never yields"),
        }
    }

    /// Starts a **budgeted** solve of an already-parsed goal: like
    /// [`Machine::run_goal_par`], but execution stops when `budget` runs out.
    /// A preemptible budget returns [`Solve::Yield`] with a token that
    /// [`Machine::resume`] continues from — arena, goal stack, trail and
    /// barrier stack all stay live on the machine between slices, so a
    /// resumed solve is *the same computation*, producing bit-identical
    /// answers, counters and task trees to an uninterrupted run.
    ///
    /// Starting a new solve invalidates any outstanding [`SolveToken`].
    ///
    /// # Errors
    ///
    /// Returns an error if execution hits a limit, a runtime error, or
    /// exhausts a non-preemptible budget ([`EngineError::BudgetExceeded`]).
    /// On any error the run state is unwound eagerly: the arena is truncated
    /// to empty, the trail emptied, and the machine is immediately reusable.
    pub fn solve_goal(
        &mut self,
        goal: &Term,
        var_names: &[Symbol],
        hook: Option<&dyn ParHook>,
        budget: &Budget,
    ) -> EngineResult<Solve> {
        self.reset_run_state();
        self.counters = Counters::default();
        self.recorder = TaskRecorder::new();
        self.stats = MachineStats::default();
        if let Some(profiler) = self.profiler.as_mut() {
            profiler.clear();
        }
        self.solve_gen += 1;
        self.query_vars.clear();
        self.query_vars.extend_from_slice(var_names);

        // Query variables occupy the bottom of the arena, so their cell
        // indices double as binding-table slots for answer extraction.
        let nvars = var_names.len().max(goal.var_bound());
        for i in 0..nvars {
            self.heap.push(HCell::unbound(i));
        }
        let root = self.write_ir(goal, 0);
        self.push_goal(Goal::Cell(root))?;
        self.drive(hook, budget)
    }

    /// Continues a solve suspended by [`Solve::Yield`], under a fresh slice
    /// budget. `hook` must be the same parallel hook (or `None`) the solve
    /// was started with — the machine does not retain it across slices.
    ///
    /// # Errors
    ///
    /// Returns an error if `token` is stale (the suspended solve it belonged
    /// to was superseded by a new query), or under the same conditions as
    /// [`Machine::solve_goal`].
    pub fn resume(
        &mut self,
        token: SolveToken,
        hook: Option<&dyn ParHook>,
        budget: &Budget,
    ) -> EngineResult<Solve> {
        if !self.suspended || token.gen != self.solve_gen {
            return Err(EngineError::TypeError {
                builtin: "resume",
                message: "stale solve token: no matching suspended solve".into(),
            });
        }
        self.suspended = false;
        self.drive(hook, budget)
    }

    /// Whether a preempted solve is in flight (a [`SolveToken`] is
    /// outstanding and the only way forward on this machine is
    /// [`Machine::resume`] or a new query).
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// Current arena occupancy in cells. After a successful solve the answer
    /// terms live here until the next query; after an engine error the run
    /// state has been unwound and this is 0.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Current binding-trail length. 0 after an engine error (the unwind
    /// empties the trail).
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }

    /// Runs one budget slice of the current solve and packages the result:
    /// the outcome when the query finishes, a token when the budget
    /// preempts it first, and an eagerly-unwound machine on error.
    fn drive(&mut self, hook: Option<&dyn ParHook>, budget: &Budget) -> EngineResult<Solve> {
        let limits = SliceLimits::new(budget, &self.counters);
        // The `engine.solve` failpoint fires at the slice boundary, where the
        // machine state is consistent, and takes the same eager-unwind error
        // path as any engine error below.
        let injected =
            granlog_fault::fail_or("engine.solve", || EngineError::Fault("engine.solve"));
        match injected.and_then(|()| self.run(hook, &limits)) {
            Ok(RunState::Done(succeeded)) => {
                self.note_heap_high_water();
                self.stats.trail_high_water = self.stats.trail_high_water.max(self.trail.len());
                let bindings = self
                    .query_vars
                    .iter()
                    .enumerate()
                    .map(|(i, name)| (*name, self.resolve_idx(i)))
                    .collect();
                Ok(Solve::Done(QueryOutcome {
                    succeeded,
                    bindings,
                    counters: self.counters,
                    work: self.config.cost_model.work(&self.counters),
                    task_tree: std::mem::take(&mut self.recorder).into_tree(),
                }))
            }
            Ok(RunState::Suspended) => {
                self.suspended = true;
                Ok(Solve::Yield(SolveToken {
                    gen: self.solve_gen,
                }))
            }
            Err(e) => {
                // Errors unwind eagerly: truncate the arena and empty the
                // trail *now*, so an erroring query can never leave a large
                // heap pinned while the machine sits idle in a pool.
                self.reset_run_state();
                Err(e)
            }
        }
    }

    /// Clears every per-run machine structure (arena, trail, goal stack and
    /// trail, choice points, barriers, scratch), folding their sizes into
    /// the high-water stats first. Counters, recorder and stats survive —
    /// the start of a new solve resets those separately.
    fn reset_run_state(&mut self) {
        self.note_heap_high_water();
        self.stats.trail_high_water = self.stats.trail_high_water.max(self.trail.len());
        self.heap.clear();
        self.trail.clear();
        self.goal_top = 0;
        self.goal_trail.clear();
        self.protect = 0;
        self.choice_points.clear();
        self.barriers.clear();
        self.base_goal = 0;
        self.base_cp = 0;
        self.arm_scratch.clear();
        self.suspended = false;
    }

    // ------------------------------------------------------------------
    // Arena plumbing
    // ------------------------------------------------------------------

    /// Dereferences a heap index: follows bound `Ref` chains to the
    /// representative cell. O(chain length), allocation-free.
    pub(crate) fn deref_idx(&self, mut idx: usize) -> usize {
        loop {
            match self.heap[idx] {
                HCell::Ref(next) if next as usize != idx => idx = next as usize,
                _ => return idx,
            }
        }
    }

    /// The cell at a heap index.
    #[inline]
    pub(crate) fn cell(&self, idx: usize) -> HCell {
        self.heap[idx]
    }

    /// Dereferences a cell value (following its `Ref`, if it is one).
    pub(crate) fn deref_cell(&self, cell: HCell) -> HCell {
        match cell {
            HCell::Ref(i) => self.heap[self.deref_idx(i as usize)],
            other => other,
        }
    }

    /// The dereferenced cell of argument `k` of a goal whose argument block
    /// starts at `base` — the builtins' argument accessor.
    pub(crate) fn deref_arg(&self, base: usize, k: usize) -> HCell {
        self.heap[self.deref_idx(base + k)]
    }

    /// Binds the unbound variable cell at `var`, overwriting it in place and
    /// recording the index on the trail.
    pub(crate) fn bind_cell(&mut self, var: usize, value: HCell) {
        debug_assert!(
            matches!(self.heap[var], HCell::Ref(v) if v as usize == var),
            "binding an already-bound variable"
        );
        self.heap[var] = value;
        self.trail.push(var as u32);
    }

    /// Binds the unbound variable at `var` to the *dereferenced* cell at
    /// `target`: constants and structs are copied into the variable's cell,
    /// unbound targets are pointed at.
    fn bind_to(&mut self, var: usize, target: usize) {
        let value = match self.heap[target] {
            HCell::Ref(_) => HCell::Ref(target as u32),
            other => other,
        };
        self.bind_cell(var, value);
    }

    pub(crate) fn undo_trail(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let var = self.trail.pop().expect("trail length checked") as usize;
            self.heap[var] = HCell::unbound(var);
        }
    }

    /// Cells are addressed by `u32` (`HCell::Ref`, `Struct` argument bases,
    /// the trail); panic cleanly before an arena ever outgrows that, instead
    /// of silently wrapping indices. The margin covers the few single-cell
    /// growth sites (parked cells) that don't re-check per push.
    #[inline]
    fn check_arena_capacity(&self, additional: usize) {
        assert!(
            self.heap.len() + additional <= u32::MAX as usize - 64,
            "arena term heap exceeds u32 cell addressing"
        );
    }

    /// Reserves `n` fresh unbound variable cells, returning the first index.
    pub(crate) fn fresh_vars(&mut self, n: usize) -> usize {
        self.check_arena_capacity(n);
        let base = self.heap.len();
        for k in 0..n {
            self.heap.push(HCell::unbound(base + k));
        }
        base
    }

    /// Writes an argument block of `cells` into the arena, returning its
    /// base index.
    pub(crate) fn write_args(&mut self, cells: &[HCell]) -> usize {
        self.check_arena_capacity(cells.len());
        let base = self.heap.len();
        self.heap.extend_from_slice(cells);
        base
    }

    /// Builds a proper list of the given element cells in the arena,
    /// returning the list's root cell.
    pub(crate) fn write_list(&mut self, items: &[HCell]) -> HCell {
        self.check_arena_capacity(items.len() * 2);
        let wk = well_known::get();
        let mut acc = HCell::Atom(wk.nil);
        for &item in items.iter().rev() {
            let base = self.heap.len();
            self.heap.push(item);
            self.heap.push(acc);
            acc = HCell::Struct(wk.cons, 2, base as u32);
        }
        acc
    }

    /// Writes a source-level term into the arena, renaming its variables by
    /// `var_base` (whose slots must already exist), and returns its root
    /// cell.
    fn write_ir(&mut self, term: &Term, var_base: usize) -> HCell {
        match term {
            Term::Var(v) => HCell::Ref((var_base + v) as u32),
            Term::Atom(s) => HCell::Atom(*s),
            Term::Int(i) => HCell::Int(*i),
            Term::Float(x) => HCell::Float(x.0),
            Term::Struct(name, args) => {
                // Reserve the argument block first (children may themselves
                // grow the arena), then fill it in order.
                let base = self.fresh_vars(args.len());
                for (k, arg) in args.iter().enumerate() {
                    let cell = self.write_ir(arg, var_base);
                    self.heap[base + k] = cell;
                }
                HCell::Struct(*name, args.len() as u32, base as u32)
            }
        }
    }

    /// Loads a term into the arena (reserving slots for its variables) and
    /// returns a heap index for it. Test-only plumbing for unit tests that
    /// want to evaluate or inspect a term outside a query.
    #[cfg(test)]
    pub(crate) fn write_term(&mut self, term: &Term) -> usize {
        let var_base = self.heap.len();
        self.fresh_vars(term.var_bound());
        let cell = self.write_ir(term, var_base);
        let idx = self.heap.len();
        self.heap.push(cell);
        idx
    }

    /// Writes the template subtree at `*pos` into the arena, advancing
    /// `*pos` past it, and returns its root cell. Clause-local variables are
    /// renamed by `var_base` (the activation's variable block).
    fn write_template(&mut self, cells: &[Cell], pos: &mut usize, var_base: usize) -> HCell {
        let cell = cells[*pos];
        *pos += 1;
        match cell {
            Cell::Var(v) | Cell::VarFirst(v) => HCell::Ref((var_base + v as usize) as u32),
            Cell::Atom(s) => HCell::Atom(s),
            Cell::Int(i) => HCell::Int(i),
            Cell::Float(x) => HCell::Float(x),
            Cell::Struct(s, arity) => {
                let base = self.fresh_vars(arity as usize);
                for k in 0..arity as usize {
                    let arg = self.write_template(cells, pos, var_base);
                    self.heap[base + k] = arg;
                }
                HCell::Struct(s, arity, base as u32)
            }
        }
    }

    /// Fully resolves the term at a heap index back into a source-level
    /// [`Term`] (unbound variables become source variables numbered by their
    /// cell index). This is the query-answer boundary: answers materialize
    /// out of the arena here and nowhere else.
    pub(crate) fn resolve_idx(&self, idx: usize) -> Term {
        let d = self.deref_idx(idx);
        match self.heap[d] {
            HCell::Ref(_) => Term::Var(d),
            HCell::Atom(s) => Term::Atom(s),
            HCell::Int(i) => Term::Int(i),
            HCell::Float(x) => Term::float(x),
            HCell::Struct(name, arity, base) => Term::Struct(
                name,
                (0..arity as usize)
                    .map(|k| self.resolve_idx(base as usize + k))
                    .collect(),
            ),
        }
    }

    /// [`Machine::resolve_idx`] for a cell value that need not live in the
    /// arena (goal-stack entries, error reporting).
    pub(crate) fn resolve_cell(&self, cell: HCell) -> Term {
        match cell {
            HCell::Ref(i) => self.resolve_idx(i as usize),
            HCell::Atom(s) => Term::Atom(s),
            HCell::Int(i) => Term::Int(i),
            HCell::Float(x) => Term::float(x),
            HCell::Struct(name, arity, base) => Term::Struct(
                name,
                (0..arity as usize)
                    .map(|k| self.resolve_idx(base as usize + k))
                    .collect(),
            ),
        }
    }

    /// Resolves query variable `idx` of the most recent
    /// [`Machine::run_goal_par`] call back into a source-level [`Term`]
    /// (unbound variables appear as `Term::Var(cell index)`). Valid until
    /// the next query resets the arena.
    pub fn resolve_var(&self, idx: usize) -> Term {
        self.resolve_idx(idx)
    }

    fn note_heap_high_water(&mut self) {
        self.stats.heap_high_water = self.stats.heap_high_water.max(self.heap.len());
    }

    // ------------------------------------------------------------------
    // Unification
    // ------------------------------------------------------------------

    #[inline]
    fn count_unification(&mut self) {
        self.counters.unifications += 1;
        self.record_work(self.config.cost_model.per_unification);
    }

    /// Unifies the terms at two heap indices, recording bindings on the
    /// trail. Counts one unification per visited subterm pair, exactly as
    /// the seed interpreter did.
    pub(crate) fn unify(&mut self, a: usize, b: usize) -> bool {
        self.count_unification();
        let a = self.deref_idx(a);
        let b = self.deref_idx(b);
        match (self.heap[a], self.heap[b]) {
            (HCell::Ref(_), HCell::Ref(_)) if a == b => true,
            (HCell::Ref(_), _) => {
                self.bind_to(a, b);
                true
            }
            (_, HCell::Ref(_)) => {
                self.bind_to(b, a);
                true
            }
            (HCell::Atom(x), HCell::Atom(y)) => x == y,
            (HCell::Int(x), HCell::Int(y)) => x == y,
            (HCell::Float(x), HCell::Float(y)) => x == y,
            (HCell::Struct(f, n, pa), HCell::Struct(g, m, pb)) => {
                if f != g || n != m {
                    return false;
                }
                (0..n as usize).all(|k| self.unify(pa as usize + k, pb as usize + k))
            }
            _ => false,
        }
    }

    /// Unifies the term at a heap index with a cell value, parking the cell
    /// in the arena when it needs an address (it is garbage afterwards;
    /// truncation reclaims it).
    pub(crate) fn unify_cell(&mut self, a: usize, value: HCell) -> bool {
        match value {
            HCell::Ref(j) => self.unify(a, j as usize),
            other => {
                let idx = self.heap.len();
                self.heap.push(other);
                self.unify(a, idx)
            }
        }
    }

    /// Like [`Machine::unify`] but *uncounted*: the unifiability probe
    /// behind `\=`. Bindings go on the trail as usual; the caller undoes
    /// them with [`Machine::undo_trail`] from a saved [`Machine::trail_mark`].
    /// Kept separate so the probe's internal steps never perturb the
    /// operation counters the experiments pin.
    pub(crate) fn unify_probe(&mut self, a: usize, b: usize) -> bool {
        let a = self.deref_idx(a);
        let b = self.deref_idx(b);
        match (self.heap[a], self.heap[b]) {
            (HCell::Ref(_), HCell::Ref(_)) if a == b => true,
            (HCell::Ref(_), _) => {
                self.bind_to(a, b);
                true
            }
            (_, HCell::Ref(_)) => {
                self.bind_to(b, a);
                true
            }
            (HCell::Atom(x), HCell::Atom(y)) => x == y,
            (HCell::Int(x), HCell::Int(y)) => x == y,
            (HCell::Float(x), HCell::Float(y)) => x == y,
            (HCell::Struct(f, n, pa), HCell::Struct(g, m, pb)) => {
                if f != g || n != m {
                    return false;
                }
                (0..n as usize).all(|k| self.unify_probe(pa as usize + k, pb as usize + k))
            }
            _ => false,
        }
    }

    /// The current trail height, for probe-and-undo builtins.
    pub(crate) fn trail_mark(&self) -> usize {
        self.trail.len()
    }

    /// Unifies a goal subterm (by heap index) against the template subtree
    /// at `*pos`, advancing `*pos` past it on success (on failure the cursor
    /// is abandoned along with the whole head attempt). Counter-for-counter
    /// identical to materializing the subtree and unifying: one count per
    /// visited pair, and a template subtree is only *written into the arena*
    /// when the goal side is an unbound variable.
    fn unify_template(
        &mut self,
        goal: usize,
        cells: &[Cell],
        pos: &mut usize,
        var_base: usize,
    ) -> bool {
        match cells[*pos] {
            Cell::Var(v) => {
                *pos += 1;
                self.unify(goal, var_base + v as usize)
            }
            Cell::Atom(s) => {
                *pos += 1;
                self.count_unification();
                let g = self.deref_idx(goal);
                match self.heap[g] {
                    HCell::Ref(_) => {
                        self.bind_cell(g, HCell::Atom(s));
                        true
                    }
                    HCell::Atom(x) => x == s,
                    _ => false,
                }
            }
            Cell::Int(i) => {
                *pos += 1;
                self.count_unification();
                let g = self.deref_idx(goal);
                match self.heap[g] {
                    HCell::Ref(_) => {
                        self.bind_cell(g, HCell::Int(i));
                        true
                    }
                    HCell::Int(x) => x == i,
                    _ => false,
                }
            }
            Cell::Float(f) => {
                *pos += 1;
                self.count_unification();
                let g = self.deref_idx(goal);
                match self.heap[g] {
                    HCell::Ref(_) => {
                        self.bind_cell(g, HCell::Float(f));
                        true
                    }
                    HCell::Float(x) => x == f,
                    _ => false,
                }
            }
            Cell::VarFirst(v) => {
                // First occurrence of a head variable: its cell is unbound
                // by construction, so this is a plain bind — same
                // one-unification count and binding direction as the general
                // path, minus its dereferences.
                *pos += 1;
                self.count_unification();
                let head_var = var_base + v as usize;
                debug_assert!(
                    matches!(self.heap[head_var], HCell::Ref(x) if x as usize == head_var),
                    "first occurrence is unbound"
                );
                let g = self.deref_idx(goal);
                match self.heap[g] {
                    HCell::Ref(_) => self.bind_cell(g, HCell::Ref(head_var as u32)),
                    value => self.bind_cell(head_var, value),
                }
                true
            }
            Cell::Struct(f, arity) => {
                self.count_unification();
                let g = self.deref_idx(goal);
                match self.heap[g] {
                    HCell::Ref(_) => {
                        // Materialization on demand: only here does a
                        // template subtree become arena cells.
                        let value = self.write_template(cells, pos, var_base);
                        self.bind_cell(g, value);
                        true
                    }
                    HCell::Struct(gf, gn, gargs) if gf == f && gn == arity => {
                        *pos += 1;
                        for k in 0..arity as usize {
                            if !self.unify_template(gargs as usize + k, cells, pos, var_base) {
                                return false;
                            }
                        }
                        true
                    }
                    _ => false,
                }
            }
        }
    }

    /// Unifies an immediate (numeric) value against the template subtree at
    /// `*pos` — the `Lhs is Rhs` eager path. Same counts as routing the
    /// value through [`Machine::unify_template`] with a parked goal cell.
    fn unify_value_template(
        &mut self,
        value: HCell,
        cells: &[Cell],
        pos: &mut usize,
        var_base: usize,
    ) -> bool {
        match cells[*pos] {
            Cell::Var(v) => {
                *pos += 1;
                self.unify_cell(var_base + v as usize, value)
            }
            Cell::VarFirst(v) => {
                *pos += 1;
                self.count_unification();
                self.bind_cell(var_base + v as usize, value);
                true
            }
            Cell::Atom(_) => {
                *pos += 1;
                self.count_unification();
                false
            }
            Cell::Int(i) => {
                *pos += 1;
                self.count_unification();
                matches!(value, HCell::Int(x) if x == i)
            }
            Cell::Float(f) => {
                *pos += 1;
                self.count_unification();
                matches!(value, HCell::Float(x) if x == f)
            }
            Cell::Struct(..) => {
                // A number never matches a compound; the cursor is abandoned
                // with the failed activation.
                self.count_unification();
                false
            }
        }
    }

    /// Unifies a goal with a clause head template, renaming clause-local
    /// variables by `var_base`. Counts exactly what the seed's
    /// `unify(goal, rename(head))` counted: one for the whole-head pair plus
    /// one per visited subterm pair.
    fn unify_head(&mut self, goal_args: usize, templ: &ClauseTemplate, var_base: usize) -> bool {
        self.count_unification();
        let cells = templ.cells();
        for (k, start) in templ.head_arg_positions().iter().enumerate() {
            let mut pos = *start as usize;
            if !self.unify_template(goal_args + k, cells, &mut pos, var_base) {
                return false;
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Work accounting
    // ------------------------------------------------------------------

    fn record_work(&mut self, units: f64) {
        if units > 0.0 {
            self.recorder.record_work(units);
        }
    }

    pub(crate) fn charge_builtin(&mut self) {
        self.counters.builtins += 1;
        self.record_work(self.config.cost_model.per_builtin);
    }

    pub(crate) fn charge_grain_test(&mut self, elements: u64) {
        self.counters.grain_tests += 1;
        self.counters.grain_test_elements += elements;
        self.record_work(
            self.config.cost_model.per_grain_test
                + self.config.cost_model.per_grain_test_element * elements as f64,
        );
    }

    fn charge_head_attempt(&mut self) -> EngineResult<()> {
        self.counters.head_attempts += 1;
        self.record_work(self.config.cost_model.per_head_attempt);
        if self.counters.head_attempts > self.config.max_steps {
            return Err(EngineError::StepLimit(self.config.max_steps));
        }
        Ok(())
    }

    fn charge_resolution(&mut self) {
        self.counters.resolutions += 1;
        self.record_work(self.config.cost_model.per_resolution);
    }

    // ------------------------------------------------------------------
    // Goal stack & choice points
    // ------------------------------------------------------------------

    /// Pushes a goal slot. If the slot being written belongs to a live
    /// choice point's saved continuation (one integer compare; never true in
    /// deterministic execution), the old slot is recorded on the goal trail
    /// first so backtracking restores it.
    fn push_goal(&mut self, goal: Goal) -> EngineResult<()> {
        if self.goal_top >= self.config.max_depth {
            return Err(EngineError::DepthLimit(self.config.max_depth));
        }
        if self.goal_top < self.protect {
            self.goal_trail
                .push((self.goal_top as u32, self.goal_stack[self.goal_top]));
        }
        if self.goal_top == self.goal_stack.len() {
            self.goal_stack.push(goal);
        } else {
            self.goal_stack[self.goal_top] = goal;
        }
        self.goal_top += 1;
        if self.goal_top > self.stats.goal_stack_high_water {
            self.stats.goal_stack_high_water = self.goal_top;
        }
        Ok(())
    }

    /// Pushes a compiled step sequence (in reverse, so execution runs left
    /// to right) with the given activation context.
    fn push_seq(&mut self, clause: u32, seq: Seq, var_base: u32, cut: u32) -> EngineResult<()> {
        for k in (0..seq.len).rev() {
            self.push_goal(Goal::Step(StepRef {
                clause,
                step: seq.start + k,
                var_base,
                cut,
            }))?;
        }
        Ok(())
    }

    /// Pushes a pending goal sequence (a resumed disjunction arm or a taken
    /// if-then-else branch).
    fn push_pend(&mut self, pend: Pend) -> EngineResult<()> {
        match pend {
            Pend::Cell(cell) => self.push_goal(Goal::Cell(cell)),
            Pend::Seq {
                clause,
                seq,
                var_base,
                cut,
            } => self.push_seq(clause, seq, var_base, cut),
        }
    }

    fn undo_goal_trail(&mut self, mark: usize) {
        while self.goal_trail.len() > mark {
            let (slot, old) = self.goal_trail.pop().expect("length checked");
            self.goal_stack[slot as usize] = old;
        }
    }

    fn push_choice_point(
        &mut self,
        resume: Resume<'p>,
        trail_mark: usize,
        heap_mark: usize,
        goal_trail_mark: usize,
    ) {
        let goal_top = self.goal_top;
        let protect_prev = self.protect;
        self.protect = self.protect.max(goal_top);
        self.choice_points.push(ChoicePoint {
            resume,
            goal_top,
            protect_prev,
            trail_mark,
            heap_mark,
            goal_trail_mark,
        });
        self.stats.max_choice_depth = self.stats.max_choice_depth.max(self.choice_points.len());
    }

    /// Discards choice points above `cp_base` without restoring state —
    /// commit to the bindings made since (first-solution semantics of
    /// isolation barriers).
    fn commit_choice_points(&mut self, cp_base: usize) {
        if self.choice_points.len() > cp_base {
            self.protect = self.choice_points[cp_base].protect_prev;
            self.choice_points.truncate(cp_base);
        }
    }

    /// Backtracks to the most recent choice point above the current barrier
    /// floor that yields a continuation: restores trail, arena, goal stack
    /// and protection watermark, then resumes the record's alternative.
    /// Returns `false` when no choice point above the floor remains (the
    /// current (sub-)solve fails).
    fn backtrack(&mut self, templates: &[ClauseTemplate]) -> EngineResult<bool> {
        while self.choice_points.len() > self.base_cp {
            let cp = self.choice_points.pop().expect("length checked");
            self.protect = cp.protect_prev;
            self.stats.trail_high_water = self.stats.trail_high_water.max(self.trail.len());
            self.undo_trail(cp.trail_mark);
            self.note_heap_high_water();
            self.heap.truncate(cp.heap_mark);
            self.undo_goal_trail(cp.goal_trail_mark);
            self.goal_top = cp.goal_top;
            match cp.resume {
                Resume::Alt { pend } => {
                    self.push_pend(pend)?;
                    return Ok(true);
                }
                Resume::Clauses {
                    goal,
                    cands,
                    cursor,
                } => {
                    if self.profiled_clauses(templates, goal, cands, cursor)? {
                        return Ok(true);
                    }
                    // Candidates exhausted: keep unwinding.
                }
            }
        }
        Ok(false)
    }

    // ------------------------------------------------------------------
    // Barriers
    // ------------------------------------------------------------------

    /// Pushes an isolation barrier at the current machine position. The
    /// sub-goal(s) of the guarded construct are pushed (above the barrier's
    /// `goal_base`) by the caller afterwards.
    fn push_barrier(&mut self, exit: BarrierExit) -> EngineResult<()> {
        if self.barriers.len() >= self.config.max_depth {
            return Err(EngineError::DepthLimit(self.config.max_depth));
        }
        self.barriers.push(Barrier {
            exit,
            goal_base: self.goal_top,
            cp_base: self.choice_points.len(),
            trail_mark: self.trail.len(),
            heap_mark: self.heap.len(),
        });
        self.base_goal = self.goal_top;
        self.base_cp = self.choice_points.len();
        self.stats.max_barrier_depth = self.stats.max_barrier_depth.max(self.barriers.len());
        Ok(())
    }

    /// Pops the innermost barrier and restores the cached floor fields from
    /// the one below (or the query's, with none left).
    fn pop_barrier(&mut self) -> Barrier {
        let barrier = self.barriers.pop().expect("barrier stack is non-empty");
        let (goal, cp) = self
            .barriers
            .last()
            .map(|b| (b.goal_base, b.cp_base))
            .unwrap_or((0, 0));
        self.base_goal = goal;
        self.base_cp = cp;
        barrier
    }

    /// Undoes bindings and arena growth back to a barrier's entry marks (the
    /// "condition failed" / "negation" exit path).
    fn undo_to_barrier(&mut self, trail_mark: usize, heap_mark: usize) {
        self.stats.trail_high_water = self.stats.trail_high_water.max(self.trail.len());
        self.undo_trail(trail_mark);
        self.note_heap_high_water();
        self.heap.truncate(heap_mark);
    }

    // ------------------------------------------------------------------
    // The solver
    // ------------------------------------------------------------------

    /// The solve loop: runs the goal stack down to the innermost barrier's
    /// base — resolving barriers as they complete — until the query's own
    /// base is reached (success) or failure propagates past the last choice
    /// point and barrier (failure).
    ///
    /// This is the whole engine: barriers and choice points are explicit
    /// records, so no native Rust frame is consumed per control nesting
    /// level, per resolution, or per backtrack. Because *all* solve state
    /// lives on the machine, the loop can return at any resolution boundary
    /// and be re-entered later — which is exactly what a preempted slice
    /// does.
    fn run(&mut self, hook: Option<&dyn ParHook>, limits: &SliceLimits) -> EngineResult<RunState> {
        // One refcount bump per slice: the template array is immutable for
        // the machine's lifetime, so the solve loop borrows it once instead
        // of re-cloning per clause activation.
        let templates = Arc::clone(&self.templates);
        let wk = well_known::get();
        // Wall-clock is polled once per `wall_poll_mask + 1` loop iterations
        // (the stride tightens adaptively near the deadline — see
        // `next_wall_poll_mask`); steps and heap are exact integer compares
        // checked every iteration.
        let mut wall_poll_mask: u32 = INITIAL_WALL_POLL_MASK;
        let mut iter: u32 = 0;
        // Arena growth is only observable here at resolution boundaries, but
        // that is exactly where an injected exhaustion must land anyway for
        // the unwind to be clean.
        #[cfg(feature = "failpoints")]
        let mut arena_capacity = self.heap.capacity();
        loop {
            // Sub-solve completion: the goal stack is back down to the
            // innermost barrier's base (or the query's — done). Checked
            // before the budget, so a query that finishes exactly as its
            // budget runs out completes rather than yields.
            while self.goal_top == self.base_goal {
                if self.barriers.is_empty() {
                    return Ok(RunState::Done(true));
                }
                if !self.barrier_done(&templates)? && !self.fail(&templates)? {
                    return Ok(RunState::Done(false));
                }
            }
            // Budget checks, at the resolution boundary only: every machine
            // structure is consistent between goals, so a yield here can
            // resume and a budget error can unwind without half-built state.
            // The checks read the counters and never write them — budgeted
            // runs stay counter-identical to unbudgeted ones.
            if limits.active {
                if self.counters.head_attempts >= limits.step_target {
                    if limits.preemptible {
                        return Ok(RunState::Suspended);
                    }
                    return Err(EngineError::BudgetExceeded {
                        resource: BudgetKind::Steps,
                        limit: limits.steps_limit,
                    });
                }
                if self.heap.len() > limits.heap_limit {
                    return Err(EngineError::BudgetExceeded {
                        resource: BudgetKind::HeapCells,
                        limit: limits.heap_limit as u64,
                    });
                }
                if let Some(deadline) = limits.deadline {
                    iter = iter.wrapping_add(1);
                    if iter & wall_poll_mask == 0 {
                        let now = Instant::now();
                        if now >= deadline {
                            if limits.preemptible {
                                return Ok(RunState::Suspended);
                            }
                            return Err(EngineError::BudgetExceeded {
                                resource: BudgetKind::Wall,
                                limit: limits.wall_ms,
                            });
                        }
                        wall_poll_mask = next_wall_poll_mask(
                            wall_poll_mask,
                            deadline - now,
                            limits.wall_allowance,
                        );
                    }
                }
            }
            #[cfg(feature = "failpoints")]
            if self.heap.capacity() != arena_capacity {
                arena_capacity = self.heap.capacity();
                if granlog_fault::should_fail("engine.arena.grow") {
                    return Err(EngineError::Fault("engine.arena.grow"));
                }
            }
            self.goal_top -= 1;
            let ok = match self.goal_stack[self.goal_top] {
                Goal::Cell(cell) => self.exec_cell(&templates, cell, wk, hook)?,
                Goal::Step(step) => self.exec_step(&templates, step, wk, hook)?,
            };
            if !ok && !self.fail(&templates)? {
                return Ok(RunState::Done(false));
            }
        }
    }

    /// Handles the innermost barrier's sub-solve reaching its base
    /// (success). Returns `Ok(false)` when the construct's semantics turn
    /// that success into failure (a succeeded `\+`), which the caller
    /// propagates through [`Machine::fail`].
    fn barrier_done(&mut self, templates: &[ClauseTemplate]) -> EngineResult<bool> {
        // A parallel conjunction with arms remaining advances in place: the
        // finished arm's choice points are committed and the next arm starts
        // under the same barrier.
        let top = self.barriers.len() - 1;
        if let BarrierExit::Par(state) = &self.barriers[top].exit {
            if state.next < state.count {
                let state = *state;
                let cp_base = self.barriers[top].cp_base;
                if let BarrierExit::Par(s) = &mut self.barriers[top].exit {
                    s.next += 1;
                }
                self.commit_choice_points(cp_base);
                self.recorder.pop();
                self.recorder.push(state.first_task + state.next as usize);
                self.push_arm(templates, state.arms, state.next)?;
                return Ok(true);
            }
        }
        let barrier = self.pop_barrier();
        match barrier.exit {
            BarrierExit::Not => {
                // The negated goal succeeded: discard the choice points of
                // its interior, undo its bindings, and fail the `\+`.
                self.commit_choice_points(barrier.cp_base);
                self.undo_to_barrier(barrier.trail_mark, barrier.heap_mark);
                Ok(false)
            }
            BarrierExit::Cond { then_, .. } => {
                // The condition succeeded: commit to its first solution and
                // take the then-branch with the bindings kept.
                self.commit_choice_points(barrier.cp_base);
                self.push_pend(then_)?;
                Ok(true)
            }
            BarrierExit::Par(state) => {
                // The last arm succeeded: the conjunction succeeds.
                self.commit_choice_points(barrier.cp_base);
                self.recorder.pop();
                if let ArmSource::Scratch { base } = state.arms {
                    self.arm_scratch.truncate(base as usize);
                }
                Ok(true)
            }
        }
    }

    /// Propagates failure: backtracks to the nearest resumable choice point,
    /// unwinding barriers (and applying their failure semantics) as their
    /// floors are reached. Returns `false` when the query itself has failed.
    fn fail(&mut self, templates: &[ClauseTemplate]) -> EngineResult<bool> {
        loop {
            if self.backtrack(templates)? {
                return Ok(true);
            }
            // No choice point above the floor: the innermost sub-solve
            // fails; its barrier decides what that means.
            if self.barriers.is_empty() {
                return Ok(false);
            }
            let barrier = self.pop_barrier();
            // Drop unconsumed goals of the failed attempt.
            self.goal_top = barrier.goal_base;
            self.undo_to_barrier(barrier.trail_mark, barrier.heap_mark);
            match barrier.exit {
                BarrierExit::Not => {
                    // The negated goal failed: the `\+` succeeds.
                    return Ok(true);
                }
                BarrierExit::Cond {
                    else_: Some(pend), ..
                } => {
                    // The condition failed: take the else-branch with the
                    // condition's bindings undone.
                    self.push_pend(pend)?;
                    return Ok(true);
                }
                BarrierExit::Cond { else_: None, .. } => {
                    // A bare `(Cond -> Then)` fails outright: keep unwinding
                    // in the enclosing region.
                }
                BarrierExit::Par(state) => {
                    // Independent and-parallelism: one failed arm fails the
                    // whole conjunction (no backtracking across arms).
                    self.recorder.pop();
                    if let ArmSource::Scratch { base } = state.arms {
                        self.arm_scratch.truncate(base as usize);
                    }
                }
            }
        }
    }

    /// Executes a materialized goal cell: run-time control dispatch on
    /// cached interned symbols — no string comparison (and no interner lock)
    /// on the hot path — then builtin/user-predicate dispatch with one hash
    /// probe. Returns `Ok(false)` on failure (the caller backtracks).
    fn exec_cell(
        &mut self,
        templates: &[ClauseTemplate],
        cell: HCell,
        wk: &WellKnownSymbols,
        hook: Option<&dyn ParHook>,
    ) -> EngineResult<bool> {
        let mut cell = cell;
        // Only pay a dereference when the goal is actually a variable.
        if let HCell::Ref(i) = cell {
            cell = self.heap[self.deref_idx(i as usize)];
        }
        let (name, arity, args) = match cell {
            HCell::Atom(s) => (s, 0usize, 0usize),
            HCell::Struct(s, a, base) => (s, a as usize, base as usize),
            other => return Err(EngineError::NotCallable(self.resolve_cell(other))),
        };
        match arity {
            0 if name == wk.true_ => Ok(true),
            // A cut reaching the machine as a cell is a query goal or a
            // metacalled variable: it prunes to the innermost barrier (the
            // whole query, at the top level). Cuts in compiled clause bodies
            // take the [`Step::Cut`] path with the activation's barrier.
            0 if name == wk.cut => {
                self.commit_choice_points(self.base_cp);
                Ok(true)
            }
            0 if name == wk.fail || name == wk.false_ => Ok(false),
            2 if name == wk.comma => {
                self.push_goal(Goal::Cell(self.heap[args + 1]))?;
                self.push_goal(Goal::Cell(self.heap[args]))?;
                Ok(true)
            }
            2 if name == wk.par_and => {
                let base = self.arm_scratch.len();
                self.collect_arms(cell);
                if let Some(h) = hook {
                    if let Some(done) = self.try_spawn_par(h, base)? {
                        return Ok(done);
                    }
                }
                self.begin_par_scratch(base)
            }
            2 if name == wk.semicolon => {
                // (Cond -> Then ; Else): the if-then-else shape is decided
                // at run time here because the left operand was not a
                // literal `->` at compile time (or the goal is a query /
                // metacall cell that was never compiled).
                let cond_then = match self.deref_cell(self.heap[args]) {
                    HCell::Struct(arrow, 2, ct) if arrow == wk.arrow => {
                        let ct = ct as usize;
                        Some((self.heap[ct], self.heap[ct + 1]))
                    }
                    _ => None,
                };
                if let Some((cond, then)) = cond_then {
                    self.push_barrier(BarrierExit::Cond {
                        then_: Pend::Cell(then),
                        else_: Some(Pend::Cell(self.heap[args + 1])),
                    })?;
                    self.push_goal(Goal::Cell(cond))?;
                } else {
                    // Plain disjunction: an explicit choice point holds the
                    // right arm; the left arm runs against the shared
                    // continuation in place.
                    let alt = self.heap[args + 1];
                    let first = self.heap[args];
                    self.push_choice_point(
                        Resume::Alt {
                            pend: Pend::Cell(alt),
                        },
                        self.trail.len(),
                        self.heap.len(),
                        self.goal_trail.len(),
                    );
                    self.push_goal(Goal::Cell(first))?;
                }
                Ok(true)
            }
            2 if name == wk.arrow => {
                self.push_barrier(BarrierExit::Cond {
                    then_: Pend::Cell(self.heap[args + 1]),
                    else_: None,
                })?;
                self.push_goal(Goal::Cell(self.heap[args]))?;
                Ok(true)
            }
            1 if name == wk.not => {
                self.push_barrier(BarrierExit::Not)?;
                self.push_goal(Goal::Cell(self.heap[args]))?;
                Ok(true)
            }
            _ => {
                // One probe identifies the goal: builtin or user predicate
                // (builtins shadow same-name user predicates).
                match self.dispatch.get(&(name, arity)).copied() {
                    Some(CallTarget::Builtin(builtin)) => builtins::dispatch(self, builtin, cell),
                    Some(CallTarget::User(predicate)) => {
                        // First-argument indexing: the principal functor of
                        // the dereferenced first argument selects the
                        // candidate clauses.
                        let goal_key = if arity == 0 {
                            None
                        } else {
                            self.index_key_at(args)
                        };
                        let cands = match self.config.clause_selection {
                            // Fast path: one probe of the persistent index,
                            // borrowing the precomputed candidate list — no
                            // per-call allocation or scan.
                            ClauseSelection::Indexed => {
                                Cands::Indexed(predicate.candidates(goal_key.as_ref()))
                            }
                            // Reference path: the seed's per-call linear
                            // scan with a key filter, kept for differential
                            // testing of the index.
                            ClauseSelection::LinearScan => {
                                let clauses = self.program.clauses();
                                Cands::Scanned(
                                    predicate
                                        .clause_ids
                                        .iter()
                                        .copied()
                                        .filter(|&id| {
                                            match (
                                                goal_key.as_ref(),
                                                IndexKey::of_clause_head(&clauses[id]),
                                            ) {
                                                (Some(gk), Some(hk)) => *gk == hk,
                                                _ => true,
                                            }
                                        })
                                        .collect(),
                                )
                            }
                        };
                        self.profiled_clauses(templates, cell, cands, 0)
                    }
                    None => Err(EngineError::UnknownPredicate(PredId::new(name, arity))),
                }
            }
        }
    }

    /// Executes one compiled body step. Control steps push barriers or
    /// choice points with their precompiled arm sequences; plain goal steps
    /// materialize their subtree and take the cell dispatch path.
    fn exec_step(
        &mut self,
        templates: &[ClauseTemplate],
        sref: StepRef,
        wk: &WellKnownSymbols,
        hook: Option<&dyn ParHook>,
    ) -> EngineResult<bool> {
        let StepRef {
            clause,
            step,
            var_base,
            cut,
        } = sref;
        let templ = &templates[clause as usize];
        match templ.steps()[step as usize] {
            Step::Goal(pos) => {
                let mut pos = pos as usize;
                let cell = self.write_template(templ.cells(), &mut pos, var_base as usize);
                self.exec_cell(templates, cell, wk, hook)
            }
            Step::Cut => {
                // Prune to the activation's barrier, clamped to the
                // innermost isolation barrier: local inside `\+` and
                // if-then-else conditions, transparent in `;`/`->` branches.
                self.commit_choice_points((cut as usize).max(self.base_cp));
                Ok(true)
            }
            Step::Disj { left, right } => {
                self.push_choice_point(
                    Resume::Alt {
                        pend: Pend::Seq {
                            clause,
                            seq: right,
                            var_base,
                            cut,
                        },
                    },
                    self.trail.len(),
                    self.heap.len(),
                    self.goal_trail.len(),
                );
                self.push_seq(clause, left, var_base, cut)?;
                Ok(true)
            }
            Step::IfThenElse { cond, then_, else_ } => {
                self.push_barrier(BarrierExit::Cond {
                    then_: Pend::Seq {
                        clause,
                        seq: then_,
                        var_base,
                        cut,
                    },
                    else_: Some(Pend::Seq {
                        clause,
                        seq: else_,
                        var_base,
                        cut,
                    }),
                })?;
                self.push_seq(clause, cond, var_base, cut)?;
                Ok(true)
            }
            Step::IfThen { cond, then_ } => {
                self.push_barrier(BarrierExit::Cond {
                    then_: Pend::Seq {
                        clause,
                        seq: then_,
                        var_base,
                        cut,
                    },
                    else_: None,
                })?;
                self.push_seq(clause, cond, var_base, cut)?;
                Ok(true)
            }
            Step::Not { inner } => {
                self.push_barrier(BarrierExit::Not)?;
                self.push_seq(clause, inner, var_base, cut)?;
                Ok(true)
            }
            Step::Par { arms_at, arms_len } => {
                if let Some(h) = hook {
                    let templ = &templates[clause as usize];
                    // Template-level pre-screen: with granularity on, a
                    // below-threshold conjunction is recognised here from
                    // the template cells and the activation's variable
                    // bindings — nothing is materialized, the compiled
                    // inline path below runs exactly as without a hook.
                    let screened_out = h.cell_guards().is_some_and(|guards| {
                        (0..arms_len).any(|k| {
                            let pos = templ.par_arm_cell_positions()[(arms_at + k) as usize];
                            self.template_guard_decision(
                                guards,
                                templ.cells(),
                                pos as usize,
                                var_base as usize,
                            ) == Some(false)
                        })
                    });
                    if screened_out {
                        h.note_inlined();
                    } else {
                        // Materialize the arm terms and offer the
                        // conjunction to the hook; on `Inline` fall through
                        // to the compiled in-place path below.
                        let base = self.arm_scratch.len();
                        for k in 0..arms_len {
                            let positions = templates[clause as usize].par_arm_cell_positions();
                            let mut pos = positions[(arms_at + k) as usize] as usize;
                            let cell = self.write_template(
                                templates[clause as usize].cells(),
                                &mut pos,
                                var_base as usize,
                            );
                            self.arm_scratch.push(cell);
                        }
                        if let Some(done) = self.try_spawn_par(h, base)? {
                            return Ok(done);
                        }
                        self.arm_scratch.truncate(base);
                    }
                }
                let children = self.recorder.record_fork(arms_len as usize);
                let arms = ArmSource::Compiled {
                    clause,
                    arms_at,
                    var_base,
                    cut,
                };
                self.push_barrier(BarrierExit::Par(ParState {
                    arms,
                    count: arms_len,
                    next: 1,
                    first_task: children.start,
                }))?;
                self.recorder.push(children.start);
                self.push_arm(templates, arms, 0)?;
                Ok(true)
            }
        }
    }

    /// Starts an inline parallel conjunction from arm cells already
    /// collected in `arm_scratch[base..]` (a query or metacall `&` cell, or
    /// a hook-declined spawn): records one batched fork and opens the
    /// conjunction's barrier with arm 0 running.
    fn begin_par_scratch(&mut self, base: usize) -> EngineResult<bool> {
        let count = self.arm_scratch.len() - base;
        let children = self.recorder.record_fork(count);
        self.push_barrier(BarrierExit::Par(ParState {
            arms: ArmSource::Scratch { base: base as u32 },
            count: count as u32,
            next: 1,
            first_task: children.start,
        }))?;
        self.recorder.push(children.start);
        let arm = self.arm_scratch[base];
        self.push_goal(Goal::Cell(arm))?;
        Ok(true)
    }

    /// Offers the parallel conjunction whose arm cells sit in
    /// `arm_scratch[base..]` to the parallel hook. Returns:
    ///
    /// * `Ok(None)` — the hook declined ([`ParDecision::Inline`]); the
    ///   caller runs the arms inline (the scratch range is left in place).
    /// * `Ok(Some(ok))` — the hook executed the arms; `ok` is the
    ///   conjunction's outcome after the deterministic in-order join
    ///   (answer bindings unified into the parent arena, child counters and
    ///   work merged, fork recorded in the task tree). The scratch range is
    ///   consumed.
    ///
    /// The join is the copy-in half of the spawn boundary documented in
    /// [`crate::par`]: each answer's terms are written into this machine's
    /// arena over a block of fresh variables and unified with the parent
    /// cells the arm mentioned, so failures and backtracking behave exactly
    /// as if the bindings had been made by inline execution.
    fn try_spawn_par(&mut self, hook: &dyn ParHook, base: usize) -> EngineResult<Option<bool>> {
        // Cell-guard pre-screen: a bounded cell walk per arm decides most
        // granularity-control inlines for (at most) the cost of the
        // threshold, before any arm is copied out of the arena.
        if let Some(guards) = hook.cell_guards() {
            for k in base..self.arm_scratch.len() {
                if !self
                    .cell_guard_decision(guards, self.arm_scratch[k])
                    .unwrap_or(true)
                {
                    hook.note_inlined();
                    return Ok(None);
                }
            }
        }
        let arms: Vec<Term> = (base..self.arm_scratch.len())
            .map(|k| self.resolve_cell(self.arm_scratch[k]))
            .collect();
        match hook.exec_arms(&arms)? {
            ParDecision::Inline => Ok(None),
            ParDecision::Executed(None) => {
                self.arm_scratch.truncate(base);
                Ok(Some(false))
            }
            ParDecision::Executed(Some(answers)) => {
                self.arm_scratch.truncate(base);
                let children = self.recorder.record_fork(arms.len());
                for (k, answer) in answers.iter().enumerate() {
                    self.recorder.push(children.start + k);
                    self.recorder.record_work(answer.work);
                    self.recorder.pop();
                    self.counters = self.counters.add(&answer.counters);
                }
                let mut ok = true;
                'join: for answer in &answers {
                    let fresh_base = self.fresh_vars(answer.fresh_vars);
                    for (parent, term) in &answer.bindings {
                        let cell = self.write_ir(term, fresh_base);
                        if !self.unify_cell(*parent, cell) {
                            ok = false;
                            break 'join;
                        }
                    }
                }
                self.note_heap_high_water();
                Ok(Some(ok))
            }
        }
    }

    /// Pushes parallel arm `k` from its source (compiled sequence or
    /// run-time scratch cell).
    fn push_arm(
        &mut self,
        templates: &[ClauseTemplate],
        arms: ArmSource,
        k: u32,
    ) -> EngineResult<()> {
        match arms {
            ArmSource::Compiled {
                clause,
                arms_at,
                var_base,
                cut,
            } => {
                let seq = templates[clause as usize].par_arms()[(arms_at + k) as usize];
                self.push_seq(clause, seq, var_base, cut)
            }
            ArmSource::Scratch { base } => {
                let arm = self.arm_scratch[base as usize + k as usize];
                self.push_goal(Goal::Cell(arm))
            }
        }
    }

    /// Evaluates an arm's cell-level spawn guard: walks the arm's
    /// `','`-spine for the first goal with a registered guard and returns
    /// its verdict (`None` if no goal in the arm is guarded, which spawns).
    fn cell_guard_decision(&self, guards: &CellGuards, cell: HCell) -> Option<bool> {
        let wk = well_known::get();
        match self.deref_cell(cell) {
            HCell::Struct(s, 2, base) if s == wk.comma => self
                .cell_guard_decision(guards, self.heap[base as usize])
                .or_else(|| self.cell_guard_decision(guards, self.heap[base as usize + 1])),
            HCell::Atom(s) => guards.get(s, 0).map(|g| self.eval_cell_guard(g, 0, 0)),
            HCell::Struct(s, arity, base) => guards
                .get(s, arity as usize)
                .map(|g| self.eval_cell_guard(g, arity as usize, base as usize)),
            _ => None,
        }
    }

    /// Evaluates one goal's guard against its argument block, with the same
    /// bounded traversals (and the same "unknown size errs parallel"
    /// convention) as the `'$grain_ge'` builtin.
    fn eval_cell_guard(&self, guard: CellGuard, arity: usize, args: usize) -> bool {
        match guard {
            CellGuard::Always => true,
            CellGuard::Never => false,
            CellGuard::SizeAtLeast {
                arg_pos,
                measure,
                k,
            } => {
                if arg_pos as usize >= arity {
                    return true;
                }
                self.eval_guard_measure(measure, args + arg_pos as usize, k)
            }
        }
    }

    /// `size_measure(heap[idx]) >= k`, with `'$grain_ge'`-style bounded
    /// traversals (a walk never visits more than `k` elements).
    fn eval_guard_measure(&self, measure: GuardMeasure, idx: usize, k: u64) -> bool {
        match measure {
            GuardMeasure::ListLength => builtins::bounded_list_length(self, idx, k) >= k,
            GuardMeasure::TermDepth => builtins::bounded_depth(self, idx, k) >= k,
            GuardMeasure::TermSize => builtins::bounded_term_size(self, idx, k) >= k,
            GuardMeasure::IntValue => match self.heap[self.deref_idx(idx)] {
                HCell::Int(v) => (v.max(0) as u64) >= k,
                HCell::Float(v) => v >= k as f64,
                _ => true,
            },
        }
    }

    /// [`Machine::cell_guard_decision`] straight off template cells, before
    /// any materialization: walks the arm subtree's `','`-spine for the
    /// first guarded goal and evaluates its guard. The measured argument is
    /// almost always a clause variable, whose binding already lives in the
    /// arena at `var_base + v` — zero cells are written. Returns `None`
    /// when the decision needs the materialized arm (no guarded goal found,
    /// or a guarded goal whose measured argument is a template literal),
    /// which the cell-level pre-screen in [`Machine::try_spawn_par`] then
    /// settles.
    fn template_guard_decision(
        &self,
        guards: &CellGuards,
        cells: &[Cell],
        pos: usize,
        var_base: usize,
    ) -> Option<bool> {
        let wk = well_known::get();
        match cells[pos] {
            Cell::Struct(s, 2) if s == wk.comma => {
                let left = pos + 1;
                self.template_guard_decision(guards, cells, left, var_base)
                    .or_else(|| {
                        let right = crate::template::skip_subtree(cells, left);
                        self.template_guard_decision(guards, cells, right, var_base)
                    })
            }
            // A variable goal: its binding is in the arena — decide there.
            Cell::Var(v) | Cell::VarFirst(v) => {
                self.cell_guard_decision(guards, HCell::Ref((var_base + v as usize) as u32))
            }
            Cell::Atom(s) => guards.get(s, 0).map(|g| self.eval_cell_guard(g, 0, 0)),
            Cell::Struct(s, arity) => {
                let guard = guards.get(s, arity as usize)?;
                match guard {
                    CellGuard::Always => Some(true),
                    CellGuard::Never => Some(false),
                    CellGuard::SizeAtLeast {
                        arg_pos,
                        measure,
                        k,
                    } => {
                        if arg_pos >= arity {
                            return Some(true);
                        }
                        let mut arg = pos + 1;
                        for _ in 0..arg_pos {
                            arg = crate::template::skip_subtree(cells, arg);
                        }
                        match cells[arg] {
                            Cell::Var(v) | Cell::VarFirst(v) => {
                                Some(self.eval_guard_measure(measure, var_base + v as usize, k))
                            }
                            Cell::Int(i) if measure == GuardMeasure::IntValue => {
                                Some((i.max(0) as u64) >= k)
                            }
                            // A structured template literal: measuring it
                            // needs materialization — defer.
                            _ => None,
                        }
                    }
                }
            }
            _ => None,
        }
    }

    /// The index key of the (dereferenced) first goal argument: the
    /// goal-side counterpart of [`IndexKey::of_term`]. `None` for variables,
    /// which match every bucket.
    fn index_key_at(&self, first_arg: usize) -> Option<IndexKey> {
        match self.heap[self.deref_idx(first_arg)] {
            HCell::Ref(_) => None,
            HCell::Atom(s) => Some(IndexKey::Atom(s)),
            HCell::Int(i) => Some(IndexKey::Int(i)),
            HCell::Float(x) => Some(IndexKey::of_float(x)),
            HCell::Struct(s, arity, _) => Some(IndexKey::Struct(s, arity as usize)),
        }
    }

    /// Tries the candidate clauses of a call from `cursor` on. On the first
    /// activation whose head and eager builtin prefix succeed, pushes the
    /// compiled body sequence (and a choice point if candidates remain) and
    /// returns `true`. Returns `false` with the candidates exhausted.
    ///
    /// The choice-point height at entry is the activation's *cut barrier*:
    /// a `!` in the body prunes back to it, discarding both this call's
    /// remaining candidates and every choice point created since. (Resumed
    /// calls observe the same height, because backtracking pops the
    /// alternatives record before retrying.)
    /// [`Machine::try_clauses`] with per-predicate port accounting when the
    /// profiler is on. Both clause-selection entry points (`exec_cell` for
    /// fresh calls, `backtrack` for redos) route through here; with the
    /// profiler off this is a single null-check and a tail call, and the
    /// operation counters are untouched either way.
    #[inline]
    fn profiled_clauses(
        &mut self,
        templates: &[ClauseTemplate],
        goal: HCell,
        cands: Cands<'p>,
        cursor: usize,
    ) -> EngineResult<bool> {
        if self.profiler.is_none() {
            return self.try_clauses(templates, goal, cands, cursor);
        }
        let pred = match goal {
            HCell::Struct(name, arity, _) => PredId::new(name, arity as usize),
            HCell::Atom(name) => PredId::new(name, 0),
            // Unreachable: clause selection only runs for user-predicate
            // goals, which are atoms or structures. Fall through untracked.
            _ => return self.try_clauses(templates, goal, cands, cursor),
        };
        let head_attempts_before = self.counters.head_attempts;
        let unifications_before = self.counters.unifications;
        let heap_before = self.heap.len();
        let result = self.try_clauses(templates, goal, cands, cursor);
        // Compute deltas into locals before borrowing the profiler mutably.
        let head_attempts = self.counters.head_attempts - head_attempts_before;
        let unifications = self.counters.unifications - unifications_before;
        let heap_cells = (self.heap.len().saturating_sub(heap_before)) as u64;
        let profiler = self.profiler.as_mut().expect("checked above");
        let entry = profiler.entry(pred);
        if cursor == 0 {
            entry.calls += 1;
        } else {
            entry.redos += 1;
        }
        entry.head_attempts += head_attempts;
        entry.unifications += unifications;
        entry.heap_cells += heap_cells;
        match result {
            Ok(true) => entry.exits += 1,
            Ok(false) => entry.fails += 1,
            // Budget/limit error: the run is aborting and the port is
            // undetermined; leave the entry as-is.
            Err(_) => {}
        }
        result
    }

    fn try_clauses(
        &mut self,
        templates: &[ClauseTemplate],
        goal: HCell,
        cands: Cands<'p>,
        cursor: usize,
    ) -> EngineResult<bool> {
        let cut_cp = self.choice_points.len() as u32;
        let trail_mark = self.trail.len();
        let heap_mark = self.heap.len();
        let goal_trail_mark = self.goal_trail.len();
        let goal_args = match goal {
            HCell::Struct(_, _, base) => base as usize,
            _ => 0,
        };
        let total = cands.as_slice().len();
        let mut i = cursor;
        while i < total {
            let clause_id = cands.as_slice()[i];
            let templ = &templates[clause_id];
            self.charge_head_attempt()?;
            let var_base = self.fresh_vars(templ.num_vars());
            if self.unify_head(goal_args, templ, var_base) {
                self.charge_resolution();
                // Run the body's leading builtins straight off the template
                // (no materialization, no goal-stack traffic). A failure
                // here fails the activation exactly where solving the pushed
                // goal would have.
                if self.run_eager_prefix(templ, var_base)? {
                    if i + 1 < total {
                        self.push_choice_point(
                            Resume::Clauses {
                                goal,
                                cands,
                                cursor: i + 1,
                            },
                            trail_mark,
                            heap_mark,
                            goal_trail_mark,
                        );
                    }
                    // Push the precompiled body sequence. Goals materialize
                    // lazily when executed; control constructs never
                    // materialize at all. Facts push nothing.
                    self.push_seq(clause_id as u32, templ.body_seq(), var_base as u32, cut_cp)?;
                    return Ok(true);
                }
            }
            self.stats.trail_high_water = self.stats.trail_high_water.max(self.trail.len());
            self.undo_trail(trail_mark);
            self.note_heap_high_water();
            self.heap.truncate(heap_mark);
            i += 1;
        }
        Ok(false)
    }

    /// Executes a clause body's eager builtin prefix directly from the
    /// template cells. Returns `Ok(false)` as soon as one builtin fails.
    /// Counter-for-counter identical to materializing each goal and running
    /// it through the solve loop, minus the arena writes.
    fn run_eager_prefix(&mut self, templ: &ClauseTemplate, var_base: usize) -> EngineResult<bool> {
        for step in templ.eager() {
            let cells = templ.cells();
            let ok = match *step {
                crate::template::EagerGoal::NumCompare { op, lhs, rhs } => {
                    self.charge_builtin();
                    let mut pos = lhs as usize;
                    let a = crate::arith::eval_template(self, cells, &mut pos, var_base)?;
                    let mut pos = rhs as usize;
                    let b = crate::arith::eval_template(self, cells, &mut pos, var_base)?;
                    let ord = a.compare(b);
                    match op {
                        Builtin::NumLt => ord == std::cmp::Ordering::Less,
                        Builtin::NumGt => ord == std::cmp::Ordering::Greater,
                        Builtin::NumLe => ord != std::cmp::Ordering::Greater,
                        Builtin::NumGe => ord != std::cmp::Ordering::Less,
                        Builtin::NumEq => ord == std::cmp::Ordering::Equal,
                        _ => ord != std::cmp::Ordering::Equal,
                    }
                }
                crate::template::EagerGoal::Is { lhs, rhs } => {
                    self.charge_builtin();
                    let mut pos = rhs as usize;
                    let value = crate::arith::eval_template(self, cells, &mut pos, var_base)?;
                    let mut pos = lhs as usize;
                    self.unify_value_template(value.to_cell(), cells, &mut pos, var_base)
                }
                crate::template::EagerGoal::Other { builtin, goal } => {
                    let mut pos = goal as usize;
                    let g = self.write_template(cells, &mut pos, var_base);
                    builtins::dispatch(self, builtin, g)?
                }
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Flattens a (possibly nested) `&` conjunction into dereferenced arm
    /// cells appended to the shared scratch buffer.
    fn collect_arms(&mut self, cell: HCell) {
        let c = self.deref_cell(cell);
        match c {
            HCell::Struct(s, 2, base) if s == well_known::get().par_and => {
                let (l, r) = (self.heap[base as usize], self.heap[base as usize + 1]);
                self.collect_arms(l);
                self.collect_arms(r);
            }
            other => self.arm_scratch.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granlog_ir::parser::parse_program;

    fn run(program_src: &str, query: &str) -> QueryOutcome {
        let program = parse_program(program_src).unwrap();
        let mut machine = Machine::new(&program);
        machine.run_query(query).unwrap()
    }

    const APPEND: &str = r#"
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).
    "#;

    #[test]
    fn machine_is_send() {
        // The parallel executor moves machines between worker threads (one
        // machine per worker, plus a shared free-list). Nothing in the
        // machine may reintroduce a non-Send handle.
        fn assert_send<T: Send>() {}
        assert_send::<Machine<'static>>();
    }

    #[test]
    fn facts_and_failure() {
        let out = run("likes(mary, wine). likes(john, beer).", "likes(mary, wine)");
        assert!(out.succeeded);
        let out = run("likes(mary, wine).", "likes(mary, beer)");
        assert!(!out.succeeded);
    }

    #[test]
    fn append_computes_and_counts() {
        let out = run(APPEND, "append([1,2,3], [4,5], X)");
        assert!(out.succeeded);
        assert_eq!(out.binding("X").unwrap().to_string(), "[1,2,3,4,5]");
        // Cost_append(n) = n + 1 resolutions (the Appendix).
        assert_eq!(out.counters.resolutions, 4);
        assert_eq!(out.work, 4.0);
    }

    #[test]
    fn nrev_resolution_count_matches_closed_form() {
        let src = r#"
            nrev([], []).
            nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).
            append([], L, L).
            append([H|T], L, [H|R]) :- append(T, L, R).
        "#;
        let program = parse_program(src).unwrap();
        let mut machine = Machine::new(&program);
        for n in [0usize, 1, 5, 10, 20] {
            let list: Vec<String> = (0..n).map(|i| i.to_string()).collect();
            let query = format!("nrev([{}], X)", list.join(","));
            let out = machine.run_query(&query).unwrap();
            assert!(out.succeeded);
            // The paper's closed form: 0.5 n^2 + 1.5 n + 1 resolutions.
            let expected = (n * n) as f64 * 0.5 + 1.5 * n as f64 + 1.0;
            assert_eq!(out.counters.resolutions as f64, expected, "n = {n}");
            // And the output is the reversed list.
            if n > 0 {
                let reversed = out.binding("X").unwrap().as_list().unwrap();
                assert_eq!(reversed.len(), n);
                assert_eq!(reversed[0].to_string(), (n - 1).to_string());
            }
        }
    }

    #[test]
    fn arithmetic_and_comparison() {
        let src = r#"
            fib(0, 0).
            fib(1, 1).
            fib(M, N) :- M > 1, M1 is M - 1, M2 is M - 2,
                         fib(M1, N1), fib(M2, N2), N is N1 + N2.
        "#;
        let out = run(src, "fib(11, X)");
        assert!(out.succeeded);
        assert_eq!(out.binding("X").unwrap(), &Term::int(89));
        assert!(out.counters.resolutions > 200);
    }

    #[test]
    fn deep_deterministic_recursion_runs_iteratively() {
        // The goal stack replaces solver recursion: 50k deterministic
        // resolutions execute on a test thread's default stack, no
        // `with_large_stack` required.
        let src = "count(0). count(N) :- N > 0, N1 is N - 1, count(N1).";
        let out = run(src, "count(50000)");
        assert!(out.succeeded);
        assert_eq!(out.counters.resolutions, 50_001);
    }

    #[test]
    fn backtracking_finds_later_clauses() {
        let src = r#"
            color(red). color(green). color(blue).
            nice(green).
            pick(C) :- color(C), nice(C).
        "#;
        let out = run(src, "pick(X)");
        assert!(out.succeeded);
        assert_eq!(out.binding("X").unwrap(), &Term::atom("green"));
    }

    #[test]
    fn backtracking_undoes_bindings() {
        let src = r#"
            p(1, a). p(2, b).
            q(2).
            r(X, Y) :- p(X, Y), q(X).
        "#;
        let out = run(src, "r(X, Y)");
        assert!(out.succeeded);
        assert_eq!(out.binding("X").unwrap(), &Term::int(2));
        assert_eq!(out.binding("Y").unwrap(), &Term::atom("b"));
    }

    #[test]
    fn backtracking_restores_shared_continuations() {
        // The continuation after the disjunction is consumed by the first
        // arm's attempt and must be re-exposed (via the goal trail) for the
        // second arm: r(X) runs twice, once per arm.
        let src = r#"
            r(1) :- fail.
            r(2).
            s(X) :- ( X = 1 ; X = 2 ), r(X).
        "#;
        let out = run(src, "s(X)");
        assert!(out.succeeded);
        assert_eq!(out.binding("X").unwrap(), &Term::int(2));
    }

    #[test]
    fn if_then_else() {
        let src = r#"
            classify(X, small) :- ( X < 10 -> true ; fail ).
            classify(X, big) :- ( X < 10 -> fail ; true ).
        "#;
        let out = run(src, "classify(3, C)");
        assert_eq!(out.binding("C").unwrap(), &Term::atom("small"));
        let out = run(src, "classify(30, C)");
        assert_eq!(out.binding("C").unwrap(), &Term::atom("big"));
    }

    #[test]
    fn negation_as_failure() {
        let src = "p(1). q(X) :- \\+ p(X).";
        assert!(!run(src, "q(1)").succeeded);
        assert!(run(src, "q(2)").succeeded);
    }

    #[test]
    fn cut_commits_to_first_solution() {
        // Real cut: after memb/2 finds its first solution, `!` prunes both
        // the recursive alternatives and the clause choice point, so X = b
        // is never reached.
        let src = r#"
            memb(X, [X|_]) :- !.
            memb(X, [_|T]) :- memb(X, T).
            s(X) :- memb(X, [a, b]), X = b.
        "#;
        assert!(!run(src, "s(X)").succeeded);
        // Without the guard the first (committed) solution is returned.
        let out = run(src, "memb(X, [a, b])");
        assert_eq!(out.binding("X").unwrap(), &Term::atom("a"));
    }

    #[test]
    fn cut_prunes_clause_alternatives() {
        // `max/3` in the classic cut style: once the first clause's guard
        // succeeds, the second clause must not be retried on backtracking.
        let src = r#"
            max(X, Y, X) :- X >= Y, !.
            max(_, Y, Y).
        "#;
        let out = run(src, "max(5, 3, M)");
        assert_eq!(out.binding("M").unwrap(), &Term::int(5));
        // With cut approximated as true this would succeed via clause 2.
        assert!(!run(src, "max(5, 3, M), M = 3").succeeded);
        assert!(run(src, "max(2, 3, M), M = 3").succeeded);
    }

    #[test]
    fn cut_prunes_choice_points_not_just_semantics() {
        // head_attempts pins the pruning: `first(X), fail` must not retry
        // c(2) and c(3) after the cut discarded c/1's choice point.
        let src = "c(1). c(2). c(3). first(X) :- c(X), !.";
        let out = run(src, "first(X), fail");
        assert!(!out.succeeded);
        // One attempt for first/1, one for c/1 — and none for the retries.
        assert_eq!(out.counters.head_attempts, 2);
        let out = run(src, "c(X), fail");
        assert_eq!(out.counters.head_attempts, 3, "without cut all retried");
    }

    #[test]
    fn cut_is_transparent_to_disjunction() {
        // A cut inside a disjunction arm prunes the disjunction's choice
        // point and the clause alternatives (ISO transparency).
        let src = "t(X) :- ( X = 1, ! ; X = 2 ).";
        assert!(run(src, "t(2)").succeeded, "cut not reached in left arm");
        assert!(
            !run(src, "t(X), X = 2").succeeded,
            "cut commits the left arm's binding"
        );
    }

    #[test]
    fn cut_is_local_to_negation() {
        // A cut inside `\+` prunes only choice points created inside the
        // negation (here: c/1's alternatives), never the enclosing ones.
        // (Double parentheses: `\+ (a, b)` would parse as `\+/2`.)
        let src = r#"
            c(1). c(2).
            d :- \+ ((c(X), !, X > 1)).
            g(1). g(2).
            h(Y) :- g(Y), \+ ((!, fail)), Y > 1.
        "#;
        // The cut commits `\+` to X = 1, whose guard fails: `\+` succeeds.
        assert!(run(src, "d").succeeded);
        // g/1's choice point survives the cut inside the negation: Y
        // advances to 2 on backtracking.
        assert!(run(src, "h(Y)").succeeded);
    }

    #[test]
    fn cut_is_local_to_if_then_else_conditions() {
        // ISO: a cut in the condition of if-then-else is local to the
        // condition. g/1's choice point must survive it.
        let src = r#"
            g(1). g(2).
            h(Y) :- g(Y), ( ! -> true ; true ), Y > 1.
        "#;
        let out = run(src, "h(Y)");
        assert!(out.succeeded);
        assert_eq!(out.binding("Y").unwrap(), &Term::int(2));
    }

    #[test]
    fn cut_in_then_branch_is_transparent() {
        // A cut in the *then* branch runs after the condition's barrier is
        // gone, so it prunes back to the clause activation.
        let src = r#"
            g(1). g(2).
            h(Y) :- g(Y), ( true -> ! ; true ), Y > 1.
        "#;
        assert!(!run(src, "h(Y)").succeeded);
    }

    #[test]
    fn metacalled_cut_prunes_to_the_enclosing_barrier() {
        // A cut reaching the machine as a bound variable goal (there is no
        // call/1 wrapper in this engine) prunes to the innermost barrier —
        // at the query level, the whole query.
        let src = "c(1). c(2). meta(G) :- c(X), G, X > 1.";
        assert!(!run(src, "meta(!)").succeeded);
        assert!(run(src, "meta(true)").succeeded);
    }

    #[test]
    fn deep_barrier_nesting_runs_iteratively() {
        // 10,000 recursion levels each opening negation, condition and
        // parallel-arm barriers: the explicit barrier stack executes them
        // without native recursion, so this runs on the default test-thread
        // stack (no with_large_stack).
        let src = r#"
            nn(0).
            nn(N) :- N > 0, N1 is N - 1, \+ \+ nn(N1).
            cc(0).
            cc(N) :- N > 0, N1 is N - 1, ( cc(N1) -> true ; fail ).
            pp(0).
            pp(N) :- N > 0, N1 is N - 1, pp(N1) & true.
        "#;
        let program = parse_program(src).unwrap();
        let mut machine = Machine::new(&program);
        let out = machine.run_query("nn(10000)").unwrap();
        assert!(out.succeeded);
        assert!(machine.stats().max_barrier_depth >= 10_000);
        let out = machine.run_query("cc(10000)").unwrap();
        assert!(out.succeeded);
        assert!(machine.stats().max_barrier_depth >= 10_000);
        let out = machine.run_query("pp(10000)").unwrap();
        assert!(out.succeeded);
        assert_eq!(out.task_tree.spawned_tasks(), 20_000);
        assert!(machine.stats().max_barrier_depth >= 10_000);
    }

    #[test]
    fn mixed_barrier_nesting_runs_iteratively() {
        // All three barrier kinds interleaved per level, 3,000 levels deep.
        let src = r#"
            mx(0).
            mx(N) :- N > 0, N1 is N - 1,
                     ( \+ \+ (mx(N1) & true) -> true ; fail ).
        "#;
        let out = run(src, "mx(3000)");
        assert!(out.succeeded);
    }

    #[test]
    fn disjunction() {
        let src = "p(X) :- ( X = a ; X = b ).";
        assert!(run(src, "p(a)").succeeded);
        assert!(run(src, "p(b)").succeeded);
        assert!(!run(src, "p(c)").succeeded);
    }

    #[test]
    fn parallel_conjunction_records_fork() {
        let src = r#"
            work(0).
            work(N) :- N > 0, N1 is N - 1, work(N1).
            both(N) :- work(N) & work(N).
        "#;
        let out = run(src, "both(10)");
        assert!(out.succeeded);
        let tree = &out.task_tree;
        assert_eq!(tree.spawned_tasks(), 2);
        assert_eq!(tree.fork_count(), 1);
        // Each arm does 11 resolutions of work/1.
        let kids = tree.task(tree.root()).children();
        assert_eq!(tree.task(kids[0]).local_work(), 11.0);
        assert_eq!(tree.task(kids[1]).local_work(), 11.0);
        // Total = 1 (both/1) + 2×11.
        assert_eq!(tree.total_work(), 23.0);
        // Critical path = 1 + max(11, 11).
        assert_eq!(tree.critical_path(), 12.0);
    }

    #[test]
    fn parallel_conjunction_fails_if_any_arm_fails() {
        let src = r#"
            ok.
            both :- ok & fail.
        "#;
        assert!(!run(src, "both").succeeded);
    }

    #[test]
    fn unknown_predicate_is_an_error() {
        let program = parse_program("p(1).").unwrap();
        let mut machine = Machine::new(&program);
        let err = machine.run_query("q(1)").unwrap_err();
        assert!(matches!(err, EngineError::UnknownPredicate(_)));
    }

    #[test]
    fn step_limit_is_enforced() {
        let program = parse_program("loop :- loop.").unwrap();
        let mut machine = Machine::with_config(
            &program,
            MachineConfig {
                max_steps: 1000,
                ..MachineConfig::default()
            },
        );
        let err = machine.run_query("loop").unwrap_err();
        assert!(matches!(
            err,
            EngineError::StepLimit(_) | EngineError::DepthLimit(_)
        ));
    }

    #[test]
    fn depth_limit_bounds_the_goal_stack() {
        // A program that grows the pending-goal stack without bound (each
        // resolution pushes two goals and consumes one) must hit the depth
        // limit rather than exhaust memory.
        let program = parse_program("grow :- grow, grow.").unwrap();
        let mut machine = Machine::with_config(
            &program,
            MachineConfig {
                max_depth: 500,
                ..MachineConfig::default()
            },
        );
        let err = machine.run_query("grow").unwrap_err();
        assert!(matches!(err, EngineError::DepthLimit(_)));
    }

    #[test]
    fn grain_test_builtin_guides_execution() {
        let src = r#"
            qs([], []).
            qs([P|Xs], S) :-
                part(Xs, P, Sm, Bg),
                ( '$grain_ge'(Sm, length, 3), '$grain_ge'(Bg, length, 3) ->
                    qs(Sm, S1) & qs(Bg, S2)
                ;   qs(Sm, S1), qs(Bg, S2) ),
                app(S1, [P|S2], S).
            part([], _, [], []).
            part([X|Xs], P, [X|S], B) :- X =< P, part(Xs, P, S, B).
            part([X|Xs], P, S, [X|B]) :- X > P, part(Xs, P, S, B).
            app([], L, L).
            app([H|T], L, [H|R]) :- app(T, L, R).
        "#;
        let out = run(src, "qs([5,3,8,1,9,2,7,4,6,0], S)");
        assert!(out.succeeded);
        let sorted = out.binding("S").unwrap();
        assert_eq!(sorted.to_string(), "[0,1,2,3,4,5,6,7,8,9]");
        assert!(out.counters.grain_tests > 0);
        // Some conjunctions ran in parallel (big sublists), some sequentially.
        assert!(out.task_tree.spawned_tasks() > 0);
    }

    #[test]
    fn indexing_skips_mismatched_clauses() {
        let src = r#"
            kind(0, zero).
            kind(1, one).
            kind(2, two).
        "#;
        let out = run(src, "kind(2, K)");
        assert!(out.succeeded);
        assert_eq!(out.binding("K").unwrap(), &Term::atom("two"));
        // With first-argument indexing only one head attempt is needed.
        assert_eq!(out.counters.head_attempts, 1);
    }

    #[test]
    fn machine_is_reusable_across_queries() {
        let program = parse_program(APPEND).unwrap();
        let mut machine = Machine::new(&program);
        let a = machine.run_query("append([1], [2], X)").unwrap();
        let b = machine.run_query("append([], [], X)").unwrap();
        assert!(a.succeeded && b.succeeded);
        // Counters are reset between queries.
        assert_eq!(b.counters.resolutions, 1);
    }

    #[test]
    fn stats_track_arena_and_choice_points() {
        let src = r#"
            color(red). color(green). color(blue).
            nice(blue).
            pick(C) :- color(C), nice(C).
        "#;
        let program = parse_program(src).unwrap();
        let mut machine = Machine::new(&program);
        let out = machine.run_query("pick(X)").unwrap();
        assert!(out.succeeded);
        let stats = machine.stats();
        assert!(stats.heap_high_water > 0);
        assert!(stats.goal_stack_high_water >= 1);
        // color/1 keeps a clause choice point open while nice/1 fails twice.
        assert!(stats.max_choice_depth >= 1);
        assert!(stats.trail_high_water >= 1);
    }

    #[test]
    fn preempted_solve_resumes_to_identical_outcome() {
        let src = r#"
            fib(0, 0).
            fib(1, 1).
            fib(M, N) :- M > 1, M1 is M - 1, M2 is M - 2,
                         fib(M1, N1), fib(M2, N2), N is N1 + N2.
        "#;
        let program = parse_program(src).unwrap();
        let mut machine = Machine::new(&program);
        let full = machine.run_query("fib(12, X)").unwrap();

        let (goal, vars) = granlog_ir::parser::parse_term("fib(12, X)").unwrap();
        let mut slices = 1usize;
        let budget = Budget::steps(17);
        let mut state = machine.solve_goal(&goal, &vars, None, &budget).unwrap();
        let sliced = loop {
            match state {
                Solve::Done(outcome) => break outcome,
                Solve::Yield(token) => {
                    assert!(machine.is_suspended());
                    slices += 1;
                    state = machine.resume(token, None, &budget).unwrap();
                }
            }
        };
        assert!(slices > 10, "a 17-step quantum must actually preempt");
        assert_eq!(full.succeeded, sliced.succeeded);
        assert_eq!(full.bindings, sliced.bindings);
        assert_eq!(full.counters, sliced.counters);
        assert_eq!(full.work, sliced.work);
    }

    #[test]
    fn finishing_on_the_budget_boundary_completes_instead_of_yielding() {
        let program = parse_program("p(1).").unwrap();
        let mut machine = Machine::new(&program);
        let (goal, vars) = granlog_ir::parser::parse_term("p(X)").unwrap();
        // One head attempt finishes the query exactly as the quantum ends.
        match machine
            .solve_goal(&goal, &vars, None, &Budget::steps(1))
            .unwrap()
        {
            Solve::Done(outcome) => assert!(outcome.succeeded),
            Solve::Yield(_) => panic!("completed query must not yield"),
        }
    }

    #[test]
    fn hard_step_budget_errors_and_unwinds() {
        let program = parse_program("loop :- loop.").unwrap();
        let mut machine = Machine::new(&program);
        let (goal, vars) = granlog_ir::parser::parse_term("loop").unwrap();
        let err = machine
            .solve_goal(&goal, &vars, None, &Budget::hard_steps(100))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::BudgetExceeded {
                resource: BudgetKind::Steps,
                limit: 100
            }
        );
        // The unwind truncated the arena and emptied the trail, and the
        // machine answers the next query normally.
        assert_eq!(machine.heap_len(), 0);
        assert_eq!(machine.trail_len(), 0);
        assert!(!machine.is_suspended());
    }

    #[test]
    fn heap_budget_is_always_a_hard_error() {
        let src = r#"
            build(0, []).
            build(N, [N|T]) :- N > 0, N1 is N - 1, build(N1, T).
        "#;
        let program = parse_program(src).unwrap();
        let mut machine = Machine::new(&program);
        let (goal, vars) = granlog_ir::parser::parse_term("build(10000, L)").unwrap();
        // Preemptible budget — but heap exhaustion must still error, since
        // waiting cannot reclaim memory.
        let budget = Budget {
            heap_cells: Some(512),
            preemptible: true,
            ..Budget::UNLIMITED
        };
        let err = machine.solve_goal(&goal, &vars, None, &budget).unwrap_err();
        assert!(matches!(
            err,
            EngineError::BudgetExceeded {
                resource: BudgetKind::HeapCells,
                ..
            }
        ));
        assert_eq!(machine.heap_len(), 0);
        assert_eq!(machine.trail_len(), 0);
        let out = machine.run_query("build(3, L)").unwrap();
        assert!(out.succeeded);
    }

    #[test]
    fn stale_tokens_are_rejected() {
        let src = "count(0). count(N) :- N > 0, N1 is N - 1, count(N1).";
        let program = parse_program(src).unwrap();
        let mut machine = Machine::new(&program);
        let (goal, vars) = granlog_ir::parser::parse_term("count(1000)").unwrap();
        let token = match machine
            .solve_goal(&goal, &vars, None, &Budget::steps(5))
            .unwrap()
        {
            Solve::Yield(token) => token,
            Solve::Done(_) => panic!("a 5-step quantum cannot finish count(1000)"),
        };
        // A new query supersedes the suspended solve; the old token must
        // fail loudly instead of resuming the wrong computation.
        let out = machine.run_query("count(3)").unwrap();
        assert!(out.succeeded);
        let err = machine.resume(token, None, &Budget::UNLIMITED).unwrap_err();
        assert!(err.to_string().contains("stale"));
    }

    #[test]
    fn wall_budget_preempts_long_runs() {
        let program = parse_program("loop :- loop.").unwrap();
        let mut machine = Machine::new(&program);
        let (goal, vars) = granlog_ir::parser::parse_term("loop").unwrap();
        let budget = Budget {
            wall: Some(Duration::from_millis(5)),
            preemptible: true,
            ..Budget::UNLIMITED
        };
        match machine.solve_goal(&goal, &vars, None, &budget).unwrap() {
            Solve::Yield(token) => {
                // And a non-preemptible wall budget errors on resume.
                let hard = Budget {
                    wall: Some(Duration::from_millis(5)),
                    preemptible: false,
                    ..Budget::UNLIMITED
                };
                let err = machine.resume(token, None, &hard).unwrap_err();
                assert!(matches!(
                    err,
                    EngineError::BudgetExceeded {
                        resource: BudgetKind::Wall,
                        ..
                    }
                ));
            }
            Solve::Done(_) => panic!("loop/0 cannot complete"),
        }
    }

    #[test]
    fn wall_poll_mask_halves_past_the_budget_midpoint() {
        let ms = Duration::from_millis;
        let allowance = ms(100);
        // More than half the allowance left: the stride stays coarse.
        assert_eq!(
            next_wall_poll_mask(INITIAL_WALL_POLL_MASK, ms(80), allowance),
            INITIAL_WALL_POLL_MASK
        );
        assert_eq!(
            next_wall_poll_mask(INITIAL_WALL_POLL_MASK, ms(50), allowance),
            INITIAL_WALL_POLL_MASK
        );
        // Under half left: each poll halves the stride...
        assert_eq!(
            next_wall_poll_mask(INITIAL_WALL_POLL_MASK, ms(49), allowance),
            INITIAL_WALL_POLL_MASK >> 1
        );
        // ...down to the floor, never below.
        let mut mask = INITIAL_WALL_POLL_MASK;
        for _ in 0..32 {
            mask = next_wall_poll_mask(mask, ms(1), allowance);
        }
        assert_eq!(mask, MIN_WALL_POLL_MASK);
        // Masks must stay of the form 2^k - 1 for `iter & mask` striding.
        let mut mask = INITIAL_WALL_POLL_MASK;
        while mask > MIN_WALL_POLL_MASK {
            assert_eq!(mask & (mask + 1), 0, "{mask:#x} is not 2^k - 1");
            mask = next_wall_poll_mask(mask, ms(0), allowance);
        }
    }

    #[test]
    fn wall_budget_overshoot_is_bounded() {
        let program = parse_program("loop :- loop.").unwrap();
        let mut machine = Machine::new(&program);
        let (goal, vars) = granlog_ir::parser::parse_term("loop").unwrap();
        let allowance = Duration::from_millis(25);
        let budget = Budget {
            wall: Some(allowance),
            preemptible: false,
            ..Budget::UNLIMITED
        };
        let start = Instant::now();
        let err = machine.solve_goal(&goal, &vars, None, &budget).unwrap_err();
        let elapsed = start.elapsed();
        assert!(matches!(
            err,
            EngineError::BudgetExceeded {
                resource: BudgetKind::Wall,
                ..
            }
        ));
        // The adaptive stride keeps the overshoot to a handful of fine-grained
        // polls. The bound is generous (4x the allowance) because CI machines
        // stall unpredictably, but it still pins the regression where a coarse
        // fixed stride lets a slow iteration overshoot unboundedly.
        assert!(
            elapsed < allowance * 4,
            "wall budget of {allowance:?} overshot to {elapsed:?}"
        );
    }

    #[test]
    fn work_respects_cost_model() {
        let program = parse_program(APPEND).unwrap();
        let mut machine = Machine::with_config(
            &program,
            MachineConfig {
                cost_model: CostModel::instruction_like(),
                ..MachineConfig::default()
            },
        );
        let out = machine.run_query("append([1,2], [3], X)").unwrap();
        assert!(out.succeeded);
        assert!(out.work > out.counters.resolutions as f64);
    }

    #[test]
    fn profiler_ports_on_deterministic_query() {
        let program = parse_program(APPEND).unwrap();
        let mut machine = Machine::with_config(
            &program,
            MachineConfig {
                profile: true,
                ..MachineConfig::default()
            },
        );
        let out = machine.run_query("append([1,2,3], [4], X)").unwrap();
        assert!(out.succeeded);
        let rows = machine.profile().expect("profiling enabled");
        let (pred, p) = rows
            .iter()
            .find(|(pred, _)| pred.to_string() == "append/3")
            .expect("append profiled");
        assert_eq!(pred.arity, 3);
        // n + 1 calls, all deterministic: every entry exits, none backtrack.
        assert_eq!(p.calls, 4);
        assert_eq!(p.exits, 4);
        assert_eq!(p.fails, 0);
        assert_eq!(p.redos, 0);
        assert_eq!(p.calls + p.redos, p.exits + p.fails);
        // Head-attempt work attributed to append equals the machine total
        // (the query runs nothing else).
        assert_eq!(p.head_attempts, out.counters.head_attempts);
        assert!(p.heap_cells > 0);
    }

    #[test]
    fn profiler_counts_redos_and_fails() {
        let program = parse_program(
            r#"
            choice(1).
            choice(2).
            choice(3).
            pick(X) :- choice(X), X > 2.
        "#,
        )
        .unwrap();
        let mut machine = Machine::with_config(
            &program,
            MachineConfig {
                profile: true,
                ..MachineConfig::default()
            },
        );
        let out = machine.run_query("pick(X)").unwrap();
        assert!(out.succeeded);
        let rows = machine.profile().expect("profiling enabled");
        let (_, choice) = rows
            .iter()
            .find(|(pred, _)| pred.to_string() == "choice/1")
            .expect("choice profiled");
        // One call, two redos (X=1 and X=2 rejected by the guard), each
        // entry exits with the next candidate.
        assert_eq!(choice.calls, 1);
        assert_eq!(choice.redos, 2);
        assert_eq!(choice.exits, 3);
        assert_eq!(choice.fails, 0);
        assert_eq!(choice.calls + choice.redos, choice.exits + choice.fails);
    }

    #[test]
    fn profiler_off_by_default_and_counters_identical() {
        let program = parse_program(APPEND).unwrap();
        let mut plain = Machine::new(&program);
        let out_plain = plain.run_query("append([1,2,3], [4], X)").unwrap();
        assert!(plain.profile().is_none());

        let mut profiled = Machine::with_config(
            &program,
            MachineConfig {
                profile: true,
                ..MachineConfig::default()
            },
        );
        let out_profiled = profiled.run_query("append([1,2,3], [4], X)").unwrap();
        assert_eq!(out_plain.counters, out_profiled.counters);
        assert_eq!(
            out_plain.binding("X").unwrap().to_string(),
            out_profiled.binding("X").unwrap().to_string()
        );
    }

    #[test]
    fn profiler_resets_between_queries() {
        let program = parse_program(APPEND).unwrap();
        let mut machine = Machine::with_config(
            &program,
            MachineConfig {
                profile: true,
                ..MachineConfig::default()
            },
        );
        machine.run_query("append([1,2,3], [4], X)").unwrap();
        machine.run_query("append([1], [2], X)").unwrap();
        let rows = machine.profile().expect("profiling enabled");
        let (_, p) = rows
            .iter()
            .find(|(pred, _)| pred.to_string() == "append/3")
            .expect("append profiled");
        // Counts reflect only the second (n = 1) query.
        assert_eq!(p.calls, 2);
    }
}

//! # granlog-engine
//!
//! A sequential Prolog execution engine with **cost instrumentation** and
//! **and-parallel task-tree recording**. It is the execution substrate used to
//! reproduce the evaluation of *Task Granularity Analysis in Logic Programs*
//! (Debray, Lin & Hermenegildo, PLDI 1990): the original experiments ran on
//! ROLOG and &-Prolog on a Sequent Symmetry; here the engine executes the
//! benchmark programs, counts their work in abstract units and records the
//! fork-join structure induced by parallel conjunctions (`&`), and the
//! `granlog-sim` crate then schedules that structure on a simulated
//! multiprocessor.
//!
//! Features:
//!
//! * SLD resolution with chronological backtracking, first-argument indexing,
//!   if-then-else, negation as failure, real cut (`!` prunes choice points to
//!   the activating call) and a practical set of builtins;
//! * a fully iterative machine: clause bodies — control constructs included —
//!   compile once into template step sequences, and negation / conditions /
//!   `&` arms run behind explicit barrier records instead of native Rust
//!   recursion (see [`machine`] and [`template`]);
//! * independent and-parallel semantics for `&` (each arm solved to its first
//!   solution; the conjunction fails if any arm fails), executed inline by
//!   default or offered to a pluggable parallel executor through the
//!   [`par::ParHook`] spawn boundary (implemented by the `granlog-par`
//!   crate's multi-threaded work-sharing executor);
//! * the `'$grain_ge'(Term, Measure, K)` runtime grain-size test emitted by
//!   the granularity-control transformation, charged with a cost proportional
//!   to the traversal it performs;
//! * configurable cost models ([`CostModel`]) and per-operation counters
//!   ([`Counters`]);
//! * a **preemptible** solve loop: [`machine::Budget`] bounds a slice by
//!   steps, arena cells or wall clock, and the machine either yields a
//!   resumable [`machine::SolveToken`] or raises a typed
//!   [`EngineError::BudgetExceeded`] — the substrate of the `granlog serve`
//!   multi-tenant query service.
//!
//! # Example
//!
//! ```
//! use granlog_ir::parser::parse_program;
//! use granlog_engine::Machine;
//!
//! let program = parse_program(r#"
//!     append([], L, L).
//!     append([H|T], L, [H|R]) :- append(T, L, R).
//! "#).unwrap();
//! let mut machine = Machine::new(&program);
//! let out = machine.run_query("append([1,2,3], [4], X)").unwrap();
//! assert!(out.succeeded);
//! assert_eq!(out.binding("X").unwrap().to_string(), "[1,2,3,4]");
//! assert_eq!(out.counters.resolutions, 4); // n + 1, as the paper derives
//! ```

#![warn(missing_docs)]

pub mod arith;
pub mod builtins;
pub mod cost;
pub mod error;
pub mod heap;
pub mod machine;
pub mod par;
pub mod profile;
pub mod rterm;
pub mod tasktree;
pub mod template;

pub use cost::{CostModel, Counters};
pub use error::{BudgetKind, EngineError, EngineResult};
pub use heap::HCell;
pub use machine::{
    Budget, ClauseSelection, Machine, MachineConfig, MachineStats, QueryOutcome, Solve, SolveToken,
};
pub use par::{ArmAnswer, ParDecision, ParHook};
pub use profile::PredProfile;
pub use tasktree::{ForkSpan, Segment, Task, TaskId, TaskRecorder, TaskTree};
pub use template::{Cell, ClauseTemplate, Seq, Step};

/// Runs a closure on a thread with a large stack.
///
/// The explicit goal stack and barrier stack execute deterministic
/// recursion, clause backtracking *and* control-construct nesting (`&` arms,
/// negation, conditions) iteratively; the native stack only grows with term
/// depth during unification, materialization and answer extraction.
/// Experiment harnesses still wrap their runs in this helper as head-room
/// for pathologically deep terms.
///
/// # Panics
///
/// Panics if the worker thread cannot be spawned or itself panics.
pub fn with_large_stack<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
    const STACK_BYTES: usize = 1024 * 1024 * 1024;
    std::thread::Builder::new()
        .stack_size(STACK_BYTES)
        .spawn(f)
        .expect("failed to spawn worker thread")
        .join()
        .expect("worker thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use granlog_ir::parser::parse_program;

    #[test]
    fn with_large_stack_runs_deep_recursion() {
        let result = with_large_stack(|| {
            let program =
                parse_program("count(0). count(N) :- N > 0, N1 is N - 1, count(N1).").unwrap();
            let mut machine = Machine::new(&program);
            let out = machine.run_query("count(50000)").unwrap();
            out.counters.resolutions
        });
        assert_eq!(result, 50_001);
    }
}

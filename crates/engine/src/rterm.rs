//! The seed's shared-structure runtime term representation, kept at the
//! boundary.
//!
//! The machine itself no longer executes on `RTerm`s: since the arena
//! rewrite all runtime structure lives as tagged cells in the bump-arena
//! heap ([`crate::heap`]), and answers materialize directly into
//! [`granlog_ir::Term`]s. `RTerm` remains as the seed-compatible
//! structure-sharing representation — variables as global binding-store
//! indices, compound arguments in one shared `Rc<[RTerm]>` allocation — used
//! by [`crate::template::ClauseTemplate::materialize_body`] and the
//! microbenchmarks that compare template instantiation against the seed's
//! per-activation `from_ir` tree walk.

use granlog_ir::symbol::well_known;
use granlog_ir::{Symbol, Term};
use std::rc::Rc;

/// A runtime term. Cloning is O(1).
#[derive(Debug, Clone, PartialEq)]
pub enum RTerm {
    /// A variable: an index into the machine's binding store.
    Var(usize),
    /// An atom.
    Atom(Symbol),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A compound term; the argument slice is shared. `Rc<[RTerm]>` keeps the
    /// refcount and the arguments in one allocation — half the allocator
    /// traffic of an `Rc<Vec<RTerm>>` per constructed node, which matters
    /// because term construction is the engine's dominant allocation source.
    Struct(Symbol, Rc<[RTerm]>),
}

impl RTerm {
    /// Converts a source term into runtime form, offsetting its variables.
    pub fn from_ir(term: &Term, var_offset: usize) -> RTerm {
        match term {
            Term::Var(v) => RTerm::Var(v + var_offset),
            Term::Atom(s) => RTerm::Atom(*s),
            Term::Int(i) => RTerm::Int(*i),
            Term::Float(x) => RTerm::Float(x.0),
            Term::Struct(name, args) => RTerm::Struct(
                *name,
                // Exact-size collect: one allocation, elements written in
                // place.
                args.iter().map(|a| RTerm::from_ir(a, var_offset)).collect(),
            ),
        }
    }

    /// The functor name and arity of a callable term.
    pub fn functor(&self) -> Option<(Symbol, usize)> {
        match self {
            RTerm::Atom(s) => Some((*s, 0)),
            RTerm::Struct(s, args) => Some((*s, args.len())),
            _ => None,
        }
    }

    /// The arguments of a compound term (empty for everything else).
    pub fn args(&self) -> &[RTerm] {
        match self {
            RTerm::Struct(_, args) => args,
            _ => &[],
        }
    }

    /// Is this the atom `[]`? (An interned-symbol comparison — no string
    /// lookup.)
    pub fn is_nil(&self) -> bool {
        matches!(self, RTerm::Atom(s) if *s == well_known::get().nil)
    }

    /// Is this a `'.'/2` list cell? (An interned-symbol comparison — no
    /// string lookup.)
    pub fn is_cons(&self) -> bool {
        matches!(self, RTerm::Struct(s, args) if *s == well_known::get().cons && args.len() == 2)
    }

    /// Builds an atom.
    pub fn atom(name: &str) -> RTerm {
        RTerm::Atom(Symbol::intern(name))
    }

    /// Builds a compound term.
    pub fn structure(name: Symbol, args: Vec<RTerm>) -> RTerm {
        if args.is_empty() {
            RTerm::Atom(name)
        } else {
            RTerm::Struct(name, args.into())
        }
    }

    /// Builds a list cell.
    pub fn cons(head: RTerm, tail: RTerm) -> RTerm {
        RTerm::Struct(well_known::get().cons, Rc::from([head, tail]))
    }

    /// Builds a proper list.
    pub fn list<I: IntoIterator<Item = RTerm>>(items: I) -> RTerm {
        let nil = RTerm::Atom(well_known::get().nil);
        let items: Vec<RTerm> = items.into_iter().collect();
        items
            .into_iter()
            .rev()
            .fold(nil, |acc, x| RTerm::cons(x, acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granlog_ir::parser::parse_term;

    #[test]
    fn conversion_offsets_variables() {
        let (t, _) = parse_term("f(X, g(Y, X), 3)").unwrap();
        let r = RTerm::from_ir(&t, 10);
        assert_eq!(r.functor().unwrap().1, 3);
        assert_eq!(r.args()[0], RTerm::Var(10));
        match &r.args()[1] {
            RTerm::Struct(_, args) => {
                assert_eq!(args[0], RTerm::Var(11));
                assert_eq!(args[1], RTerm::Var(10));
            }
            other => panic!("expected struct, got {other:?}"),
        }
        assert_eq!(r.args()[2], RTerm::Int(3));
    }

    #[test]
    fn list_helpers() {
        let l = RTerm::list(vec![RTerm::Int(1), RTerm::Int(2)]);
        assert!(l.is_cons());
        assert_eq!(l.args()[0], RTerm::Int(1));
        assert!(RTerm::atom("[]").is_nil());
        assert!(!RTerm::atom("nil").is_nil());
    }

    #[test]
    fn clone_is_shallow() {
        let big = RTerm::list((0..1000).map(RTerm::Int));
        let copy = big.clone();
        // Structural sharing: the argument vectors are the same allocation.
        match (&big, &copy) {
            (RTerm::Struct(_, a), RTerm::Struct(_, b)) => assert!(Rc::ptr_eq(a, b)),
            _ => panic!("expected structs"),
        }
    }

    #[test]
    fn structure_with_no_args_is_atom() {
        assert_eq!(
            RTerm::structure(Symbol::intern("foo"), vec![]),
            RTerm::atom("foo")
        );
    }
}

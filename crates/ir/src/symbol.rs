//! Interned atom / functor names.
//!
//! Prolog programs mention the same small set of atoms over and over
//! (`[]`, `'.'`, predicate names, ...). [`Symbol`] interns those strings in a
//! process-wide, append-only table so that atoms compare and hash as a single
//! `u32` and terms stay `Copy`-light.
//!
//! The table is append-only and never freed: the set of distinct atoms in a
//! compilation session is tiny compared to the terms built from them, so the
//! leak is bounded and intentional (the same strategy used by most compilers'
//! string interners).

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Mutex, OnceLock};

/// A fast, non-cryptographic hasher for small fixed-size keys (symbols,
/// predicate ids, index keys) on hot paths.
///
/// The standard library's default SipHash is DoS-resistant but costs tens of
/// nanoseconds per probe; engine dispatch tables and clause-index buckets are
/// probed once per goal, so they use this Fibonacci-multiply / xor-shift
/// hasher instead. Keys are interner indices and small integers — attacker-
/// controlled collisions are not a concern here.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for FastHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PHI);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(PHI);
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(PHI);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(PHI);
    }

    fn write_usize(&mut self, v: usize) {
        self.0 = (self.0 ^ v as u64).wrapping_mul(PHI);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        // One final avalanche so high bits (used by hashbrown's control
        // bytes) depend on every input.
        let h = self.0;
        (h ^ (h >> 29)).wrapping_mul(PHI)
    }
}

/// `HashMap` keyed by small interned values, using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// An interned string naming an atom, functor or predicate.
///
/// Two `Symbol`s are equal if and only if the strings they intern are equal.
/// Symbols are cheap to copy, compare and hash.
///
/// # Example
///
/// ```
/// use granlog_ir::Symbol;
/// let a = Symbol::intern("append");
/// let b = Symbol::intern("append");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "append");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s` and returns its symbol.
    ///
    /// Interning the same string twice returns the same symbol.
    pub fn intern(s: &str) -> Symbol {
        let mut guard = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        let id = guard.strings.len() as u32;
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        let guard = interner().lock().expect("symbol interner poisoned");
        guard.strings[self.0 as usize]
    }

    /// Returns the raw interner index. Only useful for debugging or dense maps.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

impl serde::Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Symbol::intern(&s))
    }
}

/// Well-known symbols used throughout the system.
///
/// The individual accessors (`nil()`, `cons()`, ...) are backed by a table
/// interned exactly once per process ([`well_known::get`]), so calling them in
/// hot paths costs a relaxed `OnceLock` load rather than an interner-mutex
/// round trip. Engine inner loops should fetch the whole
/// [`WellKnownSymbols`](well_known::WellKnownSymbols) table once and compare
/// against its fields directly.
pub mod well_known {
    use super::Symbol;
    use std::sync::OnceLock;

    /// Every well-known symbol, interned once and cached for the process.
    #[derive(Debug, Clone, Copy)]
    pub struct WellKnownSymbols {
        /// The empty-list atom `[]`.
        pub nil: Symbol,
        /// The list constructor `'.'`.
        pub cons: Symbol,
        /// The atom `true`.
        pub true_: Symbol,
        /// The atom `fail`.
        pub fail: Symbol,
        /// The atom `false` (synonym of `fail` in goal position).
        pub false_: Symbol,
        /// The cut atom `!`.
        pub cut: Symbol,
        /// The conjunction functor `','`.
        pub comma: Symbol,
        /// The disjunction functor `';'`.
        pub semicolon: Symbol,
        /// The if-then functor `'->'`.
        pub arrow: Symbol,
        /// The parallel-conjunction functor `'&'`.
        pub par_and: Symbol,
        /// The clause-neck functor `':-'`.
        pub neck: Symbol,
        /// The negation-as-failure functor `'\+'`.
        pub not: Symbol,
    }

    /// The process-wide well-known symbol table.
    pub fn get() -> &'static WellKnownSymbols {
        static TABLE: OnceLock<WellKnownSymbols> = OnceLock::new();
        TABLE.get_or_init(|| WellKnownSymbols {
            nil: Symbol::intern("[]"),
            cons: Symbol::intern("."),
            true_: Symbol::intern("true"),
            fail: Symbol::intern("fail"),
            false_: Symbol::intern("false"),
            cut: Symbol::intern("!"),
            comma: Symbol::intern(","),
            semicolon: Symbol::intern(";"),
            arrow: Symbol::intern("->"),
            par_and: Symbol::intern("&"),
            neck: Symbol::intern(":-"),
            not: Symbol::intern("\\+"),
        })
    }

    /// The empty-list atom `[]`.
    pub fn nil() -> Symbol {
        get().nil
    }

    /// The list constructor `'.'`.
    pub fn cons() -> Symbol {
        get().cons
    }

    /// The atom `true`.
    pub fn true_() -> Symbol {
        get().true_
    }

    /// The atom `fail`.
    pub fn fail() -> Symbol {
        get().fail
    }

    /// The conjunction functor `','`.
    pub fn comma() -> Symbol {
        get().comma
    }

    /// The disjunction functor `';'`.
    pub fn semicolon() -> Symbol {
        get().semicolon
    }

    /// The if-then functor `'->'`.
    pub fn arrow() -> Symbol {
        get().arrow
    }

    /// The parallel-conjunction functor `'&'`.
    pub fn par_and() -> Symbol {
        get().par_and
    }

    /// The clause-neck functor `':-'`.
    pub fn neck() -> Symbol {
        get().neck
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("foo_distinct_1");
        let b = Symbol::intern("foo_distinct_2");
        assert_ne!(a, b);
    }

    #[test]
    fn as_str_round_trips() {
        let s = "a_rather_unusual_atom_name";
        assert_eq!(Symbol::intern(s).as_str(), s);
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::intern("hello");
        assert_eq!(s.to_string(), "hello");
        assert!(format!("{s:?}").contains("hello"));
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "xyz".into();
        let b: Symbol = String::from("xyz").into();
        assert_eq!(a, b);
    }

    #[test]
    fn well_known_symbols() {
        assert_eq!(well_known::nil().as_str(), "[]");
        assert_eq!(well_known::cons().as_str(), ".");
        assert_eq!(well_known::comma().as_str(), ",");
        assert_eq!(well_known::par_and().as_str(), "&");
    }

    #[test]
    fn well_known_table_matches_interner() {
        let wk = well_known::get();
        assert_eq!(wk.nil, Symbol::intern("[]"));
        assert_eq!(wk.cons, Symbol::intern("."));
        assert_eq!(wk.cut, Symbol::intern("!"));
        assert_eq!(wk.false_, Symbol::intern("false"));
        assert_eq!(wk.not, Symbol::intern("\\+"));
        // The table is interned once: repeated calls return identical symbols.
        assert_eq!(well_known::get().neck, wk.neck);
    }

    #[test]
    fn symbols_are_ordered_consistently() {
        let a = Symbol::intern("aaa_order");
        let b = Symbol::intern("bbb_order");
        // Ordering is by interner index, not lexicographic; it just needs to be
        // a total order usable in BTreeMap keys.
        assert!(a < b || b < a);
    }

    #[test]
    fn empty_string_is_internable() {
        let e = Symbol::intern("");
        assert_eq!(e.as_str(), "");
    }

    #[test]
    fn unicode_atoms() {
        let s = Symbol::intern("átomo_π");
        assert_eq!(s.as_str(), "átomo_π");
    }
}

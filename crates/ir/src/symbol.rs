//! Interned atom / functor names.
//!
//! Prolog programs mention the same small set of atoms over and over
//! (`[]`, `'.'`, predicate names, ...). [`Symbol`] interns those strings in a
//! process-wide, append-only table so that atoms compare and hash as a single
//! `u32` and terms stay `Copy`-light.
//!
//! The table is append-only and never freed: the set of distinct atoms in a
//! compilation session is tiny compared to the terms built from them, so the
//! leak is bounded and intentional (the same strategy used by most compilers'
//! string interners).

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string naming an atom, functor or predicate.
///
/// Two `Symbol`s are equal if and only if the strings they intern are equal.
/// Symbols are cheap to copy, compare and hash.
///
/// # Example
///
/// ```
/// use granlog_ir::Symbol;
/// let a = Symbol::intern("append");
/// let b = Symbol::intern("append");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "append");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s` and returns its symbol.
    ///
    /// Interning the same string twice returns the same symbol.
    pub fn intern(s: &str) -> Symbol {
        let mut guard = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        let id = guard.strings.len() as u32;
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        let guard = interner().lock().expect("symbol interner poisoned");
        guard.strings[self.0 as usize]
    }

    /// Returns the raw interner index. Only useful for debugging or dense maps.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

impl serde::Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Symbol::intern(&s))
    }
}

/// Well-known symbols used throughout the system.
pub mod well_known {
    use super::Symbol;

    /// The empty-list atom `[]`.
    pub fn nil() -> Symbol {
        Symbol::intern("[]")
    }

    /// The list constructor `'.'`.
    pub fn cons() -> Symbol {
        Symbol::intern(".")
    }

    /// The atom `true`.
    pub fn true_() -> Symbol {
        Symbol::intern("true")
    }

    /// The atom `fail`.
    pub fn fail() -> Symbol {
        Symbol::intern("fail")
    }

    /// The conjunction functor `','`.
    pub fn comma() -> Symbol {
        Symbol::intern(",")
    }

    /// The disjunction functor `';'`.
    pub fn semicolon() -> Symbol {
        Symbol::intern(";")
    }

    /// The if-then functor `'->'`.
    pub fn arrow() -> Symbol {
        Symbol::intern("->")
    }

    /// The parallel-conjunction functor `'&'`.
    pub fn par_and() -> Symbol {
        Symbol::intern("&")
    }

    /// The clause-neck functor `':-'`.
    pub fn neck() -> Symbol {
        Symbol::intern(":-")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("foo_distinct_1");
        let b = Symbol::intern("foo_distinct_2");
        assert_ne!(a, b);
    }

    #[test]
    fn as_str_round_trips() {
        let s = "a_rather_unusual_atom_name";
        assert_eq!(Symbol::intern(s).as_str(), s);
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::intern("hello");
        assert_eq!(s.to_string(), "hello");
        assert!(format!("{s:?}").contains("hello"));
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "xyz".into();
        let b: Symbol = String::from("xyz").into();
        assert_eq!(a, b);
    }

    #[test]
    fn well_known_symbols() {
        assert_eq!(well_known::nil().as_str(), "[]");
        assert_eq!(well_known::cons().as_str(), ".");
        assert_eq!(well_known::comma().as_str(), ",");
        assert_eq!(well_known::par_and().as_str(), "&");
    }

    #[test]
    fn symbols_are_ordered_consistently() {
        let a = Symbol::intern("aaa_order");
        let b = Symbol::intern("bbb_order");
        // Ordering is by interner index, not lexicographic; it just needs to be
        // a total order usable in BTreeMap keys.
        assert!(a < b || b < a);
    }

    #[test]
    fn empty_string_is_internable() {
        let e = Symbol::intern("");
        assert_eq!(e.as_str(), "");
    }

    #[test]
    fn unicode_atoms() {
        let s = Symbol::intern("átomo_π");
        assert_eq!(s.as_str(), "átomo_π");
    }
}

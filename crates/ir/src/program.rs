//! Programs: collections of clauses grouped by predicate, plus directives.

use crate::clause::{Clause, ClauseId};
use crate::modes::{ArgMode, ModeDecl};
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::BTreeMap;
use std::fmt;

/// A predicate identifier: functor name plus arity.
///
/// # Example
///
/// ```
/// use granlog_ir::{PredId, Symbol};
/// let p = PredId::new(Symbol::intern("append"), 3);
/// assert_eq!(p.to_string(), "append/3");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct PredId {
    /// Predicate (functor) name.
    pub name: Symbol,
    /// Number of arguments.
    pub arity: usize,
}

impl PredId {
    /// Creates a predicate identifier.
    pub fn new(name: Symbol, arity: usize) -> Self {
        PredId { name, arity }
    }

    /// Convenience constructor interning the name.
    pub fn parse(name: &str, arity: usize) -> Self {
        PredId::new(Symbol::intern(name), arity)
    }

    /// The predicate identifier of a callable term.
    pub fn of_term(term: &Term) -> Option<Self> {
        term.functor().map(|(name, arity)| PredId::new(name, arity))
    }
}

impl fmt::Debug for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// A predicate: the ordered list of clauses defining it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// The predicate's identifier.
    pub id: PredId,
    /// Indices (into [`Program::clauses`]) of the clauses defining it, in
    /// source order.
    pub clause_ids: Vec<ClauseId>,
}

/// A source-level directive (`:- ...`) recognised by the toolchain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `:- mode p(+, -).` — argument modes for a predicate.
    Mode(PredId, Vec<ArgMode>),
    /// `:- measure p(length, void).` — size measures per argument position.
    Measure(PredId, Vec<Symbol>),
    /// `:- parallel p/2.` — the predicate's body conjunctions may run in
    /// parallel (candidate for granularity control).
    Parallel(PredId),
    /// `:- sequential p/2.` — never parallelise this predicate.
    Sequential(PredId),
    /// `:- entry p(+, -).` — an entry point with the given call modes.
    Entry(PredId, Vec<ArgMode>),
    /// Any other directive, kept verbatim.
    Other(Term),
}

/// A logic program: clauses, predicate index and directives.
///
/// # Example
///
/// ```
/// use granlog_ir::parser::parse_program;
/// let p = parse_program(":- mode app(+, +, -). app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).").unwrap();
/// let app = granlog_ir::PredId::parse("app", 3);
/// assert_eq!(p.clauses_of(app).len(), 2);
/// assert!(p.mode_of(app).is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    clauses: Vec<Clause>,
    predicates: BTreeMap<PredId, Predicate>,
    directives: Vec<Directive>,
    modes: BTreeMap<PredId, ModeDecl>,
    measures: BTreeMap<PredId, Vec<Symbol>>,
    parallel: BTreeMap<PredId, bool>,
    entries: Vec<(PredId, Vec<ArgMode>)>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a clause, indexing it under its head predicate.
    ///
    /// Returns the new clause's id.
    ///
    /// # Panics
    ///
    /// Panics if the clause head is not callable (not an atom or compound).
    pub fn add_clause(&mut self, clause: Clause) -> ClauseId {
        let pred = clause
            .head_pred()
            .expect("clause head must be an atom or compound term");
        let id = self.clauses.len();
        self.clauses.push(clause);
        self.predicates
            .entry(pred)
            .or_insert_with(|| Predicate {
                id: pred,
                clause_ids: Vec::new(),
            })
            .clause_ids
            .push(id);
        id
    }

    /// Records a directive, updating the derived indexes (modes, measures,
    /// parallel/sequential markings, entries).
    pub fn add_directive(&mut self, directive: Directive) {
        match &directive {
            Directive::Mode(pred, modes) => {
                self.modes
                    .insert(*pred, ModeDecl::new(*pred, modes.clone()));
            }
            Directive::Measure(pred, ms) => {
                self.measures.insert(*pred, ms.clone());
            }
            Directive::Parallel(pred) => {
                self.parallel.insert(*pred, true);
            }
            Directive::Sequential(pred) => {
                self.parallel.insert(*pred, false);
            }
            Directive::Entry(pred, modes) => {
                self.entries.push((*pred, modes.clone()));
                self.modes
                    .entry(*pred)
                    .or_insert_with(|| ModeDecl::new(*pred, modes.clone()));
            }
            Directive::Other(_) => {}
        }
        self.directives.push(directive);
    }

    /// All clauses in source order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Mutable access to a clause (used by the annotation pass).
    pub fn clause_mut(&mut self, id: ClauseId) -> &mut Clause {
        &mut self.clauses[id]
    }

    /// Replaces a clause wholesale (used by program transformations).
    pub fn set_clause(&mut self, id: ClauseId, clause: Clause) {
        assert_eq!(
            self.clauses[id].head_pred(),
            clause.head_pred(),
            "set_clause must not change the clause's predicate"
        );
        self.clauses[id] = clause;
    }

    /// Iterates over the predicates defined by the program.
    pub fn predicates(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.values()
    }

    /// The predicate entry for `pred`, if defined.
    pub fn predicate(&self, pred: PredId) -> Option<&Predicate> {
        self.predicates.get(&pred)
    }

    /// Returns `true` if the program defines `pred`.
    pub fn defines(&self, pred: PredId) -> bool {
        self.predicates.contains_key(&pred)
    }

    /// The clauses defining `pred`, in source order.
    pub fn clauses_of(&self, pred: PredId) -> Vec<&Clause> {
        self.predicates
            .get(&pred)
            .map(|p| p.clause_ids.iter().map(|&i| &self.clauses[i]).collect())
            .unwrap_or_default()
    }

    /// The clause ids defining `pred`.
    pub fn clause_ids_of(&self, pred: PredId) -> &[ClauseId] {
        self.predicates
            .get(&pred)
            .map(|p| p.clause_ids.as_slice())
            .unwrap_or(&[])
    }

    /// All directives in source order.
    pub fn directives(&self) -> &[Directive] {
        &self.directives
    }

    /// The declared mode of `pred`, if any.
    pub fn mode_of(&self, pred: PredId) -> Option<&ModeDecl> {
        self.modes.get(&pred)
    }

    /// All declared modes.
    pub fn modes(&self) -> &BTreeMap<PredId, ModeDecl> {
        &self.modes
    }

    /// Declares (or overrides) the mode of a predicate programmatically.
    pub fn set_mode(&mut self, decl: ModeDecl) {
        self.modes.insert(decl.pred, decl);
    }

    /// The declared size measures for `pred`'s argument positions, if any.
    pub fn measure_of(&self, pred: PredId) -> Option<&[Symbol]> {
        self.measures.get(&pred).map(|v| v.as_slice())
    }

    /// Whether `pred` was explicitly marked parallel (`Some(true)`),
    /// sequential (`Some(false)`), or left unspecified (`None`).
    pub fn parallel_marking(&self, pred: PredId) -> Option<bool> {
        self.parallel.get(&pred).copied()
    }

    /// Declared entry points with their call modes.
    pub fn entries(&self) -> &[(PredId, Vec<ArgMode>)] {
        &self.entries
    }

    /// Total number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Returns `true` if the program has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Merges another program's clauses and directives into this one.
    pub fn extend_from(&mut self, other: &Program) {
        for directive in &other.directives {
            self.add_directive(directive.clone());
        }
        for clause in &other.clauses {
            self.add_clause(clause.clone());
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for clause in &self.clauses {
            writeln!(f, "{}", clause.display())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn predicates_are_grouped() {
        let p = parse_program("p(1). p(2). q(X) :- p(X). p(3).").unwrap();
        let pid = PredId::parse("p", 1);
        let qid = PredId::parse("q", 1);
        assert_eq!(p.clauses_of(pid).len(), 3);
        assert_eq!(p.clauses_of(qid).len(), 1);
        assert_eq!(p.predicates().count(), 2);
        assert!(p.defines(pid));
        assert!(!p.defines(PredId::parse("r", 1)));
    }

    #[test]
    fn clause_order_is_preserved() {
        let p = parse_program("p(1). p(2). p(3).").unwrap();
        let pid = PredId::parse("p", 1);
        let heads: Vec<String> = p
            .clauses_of(pid)
            .iter()
            .map(|c| c.head.to_string())
            .collect();
        assert_eq!(heads, vec!["p(1)", "p(2)", "p(3)"]);
    }

    #[test]
    fn directives_are_indexed() {
        let p = parse_program(
            ":- mode app(+, +, -).\n:- measure app(length, length, length).\n:- parallel q/2.\napp([], L, L).",
        )
        .unwrap();
        let app = PredId::parse("app", 3);
        assert_eq!(p.mode_of(app).unwrap().modes.len(), 3);
        assert_eq!(p.measure_of(app).unwrap().len(), 3);
        assert_eq!(p.parallel_marking(PredId::parse("q", 2)), Some(true));
        assert_eq!(p.parallel_marking(app), None);
        assert_eq!(p.directives().len(), 3);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let src = "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).";
        let p = parse_program(src).unwrap();
        let printed = p.to_string();
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(reparsed.len(), p.len());
    }

    #[test]
    #[should_panic(expected = "must not change")]
    fn set_clause_rejects_predicate_change() {
        let mut p = parse_program("p(1).").unwrap();
        let other = parse_program("q(1).").unwrap().clauses()[0].clone();
        p.set_clause(0, other);
    }

    #[test]
    fn extend_from_merges() {
        let mut a = parse_program("p(1).").unwrap();
        let b = parse_program(":- mode q(+). q(X) :- p(X).").unwrap();
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert!(a.mode_of(PredId::parse("q", 1)).is_some());
    }

    #[test]
    fn pred_id_display_and_parse() {
        let p = PredId::parse("nrev", 2);
        assert_eq!(p.to_string(), "nrev/2");
        assert_eq!(format!("{p:?}"), "nrev/2");
        let t = Term::compound("nrev", vec![Term::var(0), Term::var(1)]);
        assert_eq!(PredId::of_term(&t), Some(p));
        assert_eq!(PredId::of_term(&Term::int(1)), None);
    }
}

//! Programs: collections of clauses grouped by predicate, plus directives.

use crate::clause::{Clause, ClauseId};
use crate::modes::{ArgMode, ModeDecl};
use crate::symbol::{FastMap, Symbol};
use crate::term::Term;
use std::collections::BTreeMap;
use std::fmt;

/// A predicate identifier: functor name plus arity.
///
/// # Example
///
/// ```
/// use granlog_ir::{PredId, Symbol};
/// let p = PredId::new(Symbol::intern("append"), 3);
/// assert_eq!(p.to_string(), "append/3");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct PredId {
    /// Predicate (functor) name.
    pub name: Symbol,
    /// Number of arguments.
    pub arity: usize,
}

impl PredId {
    /// Creates a predicate identifier.
    pub fn new(name: Symbol, arity: usize) -> Self {
        PredId { name, arity }
    }

    /// Convenience constructor interning the name.
    pub fn parse(name: &str, arity: usize) -> Self {
        PredId::new(Symbol::intern(name), arity)
    }

    /// The predicate identifier of a callable term.
    pub fn of_term(term: &Term) -> Option<Self> {
        term.functor().map(|(name, arity)| PredId::new(name, arity))
    }
}

impl fmt::Debug for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// The principal functor of a clause-head (or goal) first argument, used as a
/// first-argument indexing key.
///
/// Unlike formatting the functor into an interned string (which would lock the
/// interner and allocate), an `IndexKey` is a small `Copy` value that hashes
/// and compares directly. Variables have no key (they match every bucket).
/// Floats are keyed by bit pattern with negative zero normalized to zero, so
/// two floats that unify under numeric `==` always share a bucket (NaNs do
/// not, but a NaN head never unifies with anything anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IndexKey {
    /// An atom first argument.
    Atom(Symbol),
    /// An integer first argument.
    Int(i64),
    /// A float first argument, keyed by its (±0-normalized) bit pattern.
    FloatBits(u64),
    /// A compound first argument: functor name and arity.
    Struct(Symbol, usize),
}

/// Float key bits: `-0.0` unifies with `0.0`, so both map to the same key.
pub(crate) fn float_key_bits(x: f64) -> u64 {
    if x == 0.0 {
        0
    } else {
        x.to_bits()
    }
}

impl IndexKey {
    /// The index key of a source term: `None` for variables.
    pub fn of_term(t: &Term) -> Option<IndexKey> {
        match t {
            Term::Var(_) => None,
            Term::Atom(s) => Some(IndexKey::Atom(*s)),
            Term::Int(i) => Some(IndexKey::Int(*i)),
            Term::Float(x) => Some(IndexKey::FloatBits(float_key_bits(x.0))),
            Term::Struct(s, args) => Some(IndexKey::Struct(*s, args.len())),
        }
    }

    /// The index key of a runtime float value (the goal-side counterpart of
    /// the `Term::Float` case of [`IndexKey::of_term`]).
    pub fn of_float(x: f64) -> IndexKey {
        IndexKey::FloatBits(float_key_bits(x))
    }

    /// The index key of a clause: the key of its head's first argument
    /// (`None` for variable first arguments and zero-arity heads, which match
    /// every call).
    pub fn of_clause_head(clause: &Clause) -> Option<IndexKey> {
        clause.head.args().first().and_then(IndexKey::of_term)
    }
}

/// A persistent first-argument index over one predicate's clauses, built
/// incrementally as clauses are added and kept in lock-step with the
/// predicate's `clause_ids`.
///
/// Each bucket holds the *merged* candidate list for one key: the clauses
/// whose head first argument has that principal functor **plus** the clauses
/// whose head first argument is a variable, in source order — exactly the
/// sequence a per-call linear scan with a key filter would visit. Lookups are
/// therefore a single hash probe returning a borrowed slice, with no per-call
/// allocation or key recomputation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClauseIndex {
    /// Clauses whose first argument is a variable (or whose head has no
    /// arguments): candidates for every call, in source order.
    any: Vec<ClauseId>,
    /// Key → merged candidate list (key-matching clauses and variable-headed
    /// clauses, in source order).
    buckets: FastMap<IndexKey, Vec<ClauseId>>,
}

impl ClauseIndex {
    fn insert(&mut self, id: ClauseId, key: Option<IndexKey>) {
        match key {
            None => {
                self.any.push(id);
                for bucket in self.buckets.values_mut() {
                    bucket.push(id);
                }
            }
            Some(k) => {
                self.buckets
                    .entry(k)
                    .or_insert_with(|| self.any.clone())
                    .push(id);
            }
        }
    }

    fn rebuild<'a>(&mut self, entries: impl Iterator<Item = (ClauseId, &'a Clause)>) {
        self.any.clear();
        self.buckets.clear();
        for (id, clause) in entries {
            self.insert(id, IndexKey::of_clause_head(clause));
        }
    }

    /// The candidate clauses for a call whose first argument has the given
    /// key (`None` when the first argument is unbound or absent is handled by
    /// [`Predicate::candidates`], which returns every clause).
    fn bucket(&self, key: &IndexKey) -> &[ClauseId] {
        self.buckets.get(key).map_or(&self.any, Vec::as_slice)
    }
}

/// A predicate: the ordered list of clauses defining it, plus its persistent
/// first-argument index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// The predicate's identifier.
    pub id: PredId,
    /// Indices (into [`Program::clauses`]) of the clauses defining it, in
    /// source order.
    pub clause_ids: Vec<ClauseId>,
    /// First-argument index over `clause_ids`, maintained by
    /// [`Program::add_clause`] / [`Program::set_clause`].
    index: ClauseIndex,
}

impl Predicate {
    /// The candidate clauses for a call whose (dereferenced) first argument
    /// has the given index key, in source order.
    ///
    /// `None` — an unbound or absent first argument — matches every clause.
    /// The returned slice is borrowed from the persistent index: no per-call
    /// allocation, scan, or key recomputation happens here.
    pub fn candidates(&self, key: Option<&IndexKey>) -> &[ClauseId] {
        match key {
            None => &self.clause_ids,
            Some(k) => self.index.bucket(k),
        }
    }
}

/// A source-level directive (`:- ...`) recognised by the toolchain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `:- mode p(+, -).` — argument modes for a predicate.
    Mode(PredId, Vec<ArgMode>),
    /// `:- measure p(length, void).` — size measures per argument position.
    Measure(PredId, Vec<Symbol>),
    /// `:- parallel p/2.` — the predicate's body conjunctions may run in
    /// parallel (candidate for granularity control).
    Parallel(PredId),
    /// `:- sequential p/2.` — never parallelise this predicate.
    Sequential(PredId),
    /// `:- entry p(+, -).` — an entry point with the given call modes.
    Entry(PredId, Vec<ArgMode>),
    /// Any other directive, kept verbatim.
    Other(Term),
}

/// A logic program: clauses, predicate index and directives.
///
/// # Example
///
/// ```
/// use granlog_ir::parser::parse_program;
/// let p = parse_program(":- mode app(+, +, -). app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).").unwrap();
/// let app = granlog_ir::PredId::parse("app", 3);
/// assert_eq!(p.clauses_of(app).len(), 2);
/// assert!(p.mode_of(app).is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    clauses: Vec<Clause>,
    predicates: BTreeMap<PredId, Predicate>,
    directives: Vec<Directive>,
    modes: BTreeMap<PredId, ModeDecl>,
    measures: BTreeMap<PredId, Vec<Symbol>>,
    parallel: BTreeMap<PredId, bool>,
    entries: Vec<(PredId, Vec<ArgMode>)>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a clause, indexing it under its head predicate.
    ///
    /// Returns the new clause's id.
    ///
    /// # Panics
    ///
    /// Panics if the clause head is not callable (not an atom or compound).
    pub fn add_clause(&mut self, clause: Clause) -> ClauseId {
        let pred = clause
            .head_pred()
            .expect("clause head must be an atom or compound term");
        let id = self.clauses.len();
        let key = IndexKey::of_clause_head(&clause);
        self.clauses.push(clause);
        let predicate = self.predicates.entry(pred).or_insert_with(|| Predicate {
            id: pred,
            clause_ids: Vec::new(),
            index: ClauseIndex::default(),
        });
        predicate.clause_ids.push(id);
        predicate.index.insert(id, key);
        id
    }

    /// Records a directive, updating the derived indexes (modes, measures,
    /// parallel/sequential markings, entries).
    pub fn add_directive(&mut self, directive: Directive) {
        match &directive {
            Directive::Mode(pred, modes) => {
                self.modes
                    .insert(*pred, ModeDecl::new(*pred, modes.clone()));
            }
            Directive::Measure(pred, ms) => {
                self.measures.insert(*pred, ms.clone());
            }
            Directive::Parallel(pred) => {
                self.parallel.insert(*pred, true);
            }
            Directive::Sequential(pred) => {
                self.parallel.insert(*pred, false);
            }
            Directive::Entry(pred, modes) => {
                self.entries.push((*pred, modes.clone()));
                self.modes
                    .entry(*pred)
                    .or_insert_with(|| ModeDecl::new(*pred, modes.clone()));
            }
            Directive::Other(_) => {}
        }
        self.directives.push(directive);
    }

    /// All clauses in source order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Mutates a clause in place through a closure (used by program
    /// transformations), then reindexes its predicate — so a head rewrite can
    /// never leave the persistent first-argument index stale.
    ///
    /// # Panics
    ///
    /// Panics if the closure changes the clause's predicate.
    pub fn update_clause(&mut self, id: ClauseId, f: impl FnOnce(&mut Clause)) {
        let before = self.clauses[id].head_pred();
        f(&mut self.clauses[id]);
        assert_eq!(
            before,
            self.clauses[id].head_pred(),
            "update_clause must not change the clause's predicate"
        );
        self.reindex_predicate(before.expect("indexed clauses have callable heads"));
    }

    /// Replaces a clause wholesale (used by program transformations), keeping
    /// the predicate's first-argument index up to date.
    pub fn set_clause(&mut self, id: ClauseId, clause: Clause) {
        let pred = self.clauses[id].head_pred();
        assert_eq!(
            pred,
            clause.head_pred(),
            "set_clause must not change the clause's predicate"
        );
        self.clauses[id] = clause;
        self.reindex_predicate(pred.expect("indexed clauses have callable heads"));
    }

    fn reindex_predicate(&mut self, pred: PredId) {
        let predicate = self
            .predicates
            .get_mut(&pred)
            .expect("clause belongs to an indexed predicate");
        let clauses = &self.clauses;
        predicate
            .index
            .rebuild(predicate.clause_ids.iter().map(|&i| (i, &clauses[i])));
    }

    /// Iterates over the predicates defined by the program.
    pub fn predicates(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.values()
    }

    /// The predicate entry for `pred`, if defined.
    pub fn predicate(&self, pred: PredId) -> Option<&Predicate> {
        self.predicates.get(&pred)
    }

    /// Returns `true` if the program defines `pred`.
    pub fn defines(&self, pred: PredId) -> bool {
        self.predicates.contains_key(&pred)
    }

    /// The clauses defining `pred`, in source order.
    pub fn clauses_of(&self, pred: PredId) -> Vec<&Clause> {
        self.predicates
            .get(&pred)
            .map(|p| p.clause_ids.iter().map(|&i| &self.clauses[i]).collect())
            .unwrap_or_default()
    }

    /// The clause ids defining `pred`.
    pub fn clause_ids_of(&self, pred: PredId) -> &[ClauseId] {
        self.predicates
            .get(&pred)
            .map(|p| p.clause_ids.as_slice())
            .unwrap_or(&[])
    }

    /// All directives in source order.
    pub fn directives(&self) -> &[Directive] {
        &self.directives
    }

    /// The declared mode of `pred`, if any.
    pub fn mode_of(&self, pred: PredId) -> Option<&ModeDecl> {
        self.modes.get(&pred)
    }

    /// All declared modes.
    pub fn modes(&self) -> &BTreeMap<PredId, ModeDecl> {
        &self.modes
    }

    /// Declares (or overrides) the mode of a predicate programmatically.
    pub fn set_mode(&mut self, decl: ModeDecl) {
        self.modes.insert(decl.pred, decl);
    }

    /// The declared size measures for `pred`'s argument positions, if any.
    pub fn measure_of(&self, pred: PredId) -> Option<&[Symbol]> {
        self.measures.get(&pred).map(|v| v.as_slice())
    }

    /// Whether `pred` was explicitly marked parallel (`Some(true)`),
    /// sequential (`Some(false)`), or left unspecified (`None`).
    pub fn parallel_marking(&self, pred: PredId) -> Option<bool> {
        self.parallel.get(&pred).copied()
    }

    /// Declared entry points with their call modes.
    pub fn entries(&self) -> &[(PredId, Vec<ArgMode>)] {
        &self.entries
    }

    /// Total number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Returns `true` if the program has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Merges another program's clauses and directives into this one.
    pub fn extend_from(&mut self, other: &Program) {
        for directive in &other.directives {
            self.add_directive(directive.clone());
        }
        for clause in &other.clauses {
            self.add_clause(clause.clone());
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for clause in &self.clauses {
            writeln!(f, "{}", clause.display())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn predicates_are_grouped() {
        let p = parse_program("p(1). p(2). q(X) :- p(X). p(3).").unwrap();
        let pid = PredId::parse("p", 1);
        let qid = PredId::parse("q", 1);
        assert_eq!(p.clauses_of(pid).len(), 3);
        assert_eq!(p.clauses_of(qid).len(), 1);
        assert_eq!(p.predicates().count(), 2);
        assert!(p.defines(pid));
        assert!(!p.defines(PredId::parse("r", 1)));
    }

    #[test]
    fn clause_order_is_preserved() {
        let p = parse_program("p(1). p(2). p(3).").unwrap();
        let pid = PredId::parse("p", 1);
        let heads: Vec<String> = p
            .clauses_of(pid)
            .iter()
            .map(|c| c.head.to_string())
            .collect();
        assert_eq!(heads, vec!["p(1)", "p(2)", "p(3)"]);
    }

    #[test]
    fn directives_are_indexed() {
        let p = parse_program(
            ":- mode app(+, +, -).\n:- measure app(length, length, length).\n:- parallel q/2.\napp([], L, L).",
        )
        .unwrap();
        let app = PredId::parse("app", 3);
        assert_eq!(p.mode_of(app).unwrap().modes.len(), 3);
        assert_eq!(p.measure_of(app).unwrap().len(), 3);
        assert_eq!(p.parallel_marking(PredId::parse("q", 2)), Some(true));
        assert_eq!(p.parallel_marking(app), None);
        assert_eq!(p.directives().len(), 3);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let src = "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).";
        let p = parse_program(src).unwrap();
        let printed = p.to_string();
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(reparsed.len(), p.len());
    }

    #[test]
    #[should_panic(expected = "must not change")]
    fn set_clause_rejects_predicate_change() {
        let mut p = parse_program("p(1).").unwrap();
        let other = parse_program("q(1).").unwrap().clauses()[0].clone();
        p.set_clause(0, other);
    }

    #[test]
    fn extend_from_merges() {
        let mut a = parse_program("p(1).").unwrap();
        let b = parse_program(":- mode q(+). q(X) :- p(X).").unwrap();
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert!(a.mode_of(PredId::parse("q", 1)).is_some());
    }

    #[test]
    fn first_arg_index_buckets_match_a_filtered_scan() {
        let p =
            parse_program("p(a, 1). p(b, 2). p(X, 3). p(a, 4). p(f(Y), 5). p(7, 6). p(f(g), 7).")
                .unwrap();
        let pred = p.predicate(PredId::parse("p", 2)).unwrap();
        // Reference: a linear scan keeping clauses whose first-arg key is
        // absent (variable) or equal to the probe key.
        let scan = |key: Option<IndexKey>| -> Vec<ClauseId> {
            pred.clause_ids
                .iter()
                .copied()
                .filter(
                    |&id| match (key, IndexKey::of_clause_head(&p.clauses()[id])) {
                        (Some(gk), Some(hk)) => gk == hk,
                        _ => true,
                    },
                )
                .collect()
        };
        for key in [
            None,
            IndexKey::of_term(&Term::atom("a")),
            IndexKey::of_term(&Term::atom("b")),
            IndexKey::of_term(&Term::atom("zzz")),
            IndexKey::of_term(&Term::int(7)),
            IndexKey::of_term(&Term::int(99)),
            IndexKey::of_term(&Term::compound("f", vec![Term::var(0)])),
            IndexKey::of_term(&Term::compound("f", vec![Term::var(0), Term::var(1)])),
        ] {
            assert_eq!(
                pred.candidates(key.as_ref()),
                scan(key).as_slice(),
                "key {key:?}"
            );
        }
    }

    #[test]
    fn unseen_key_falls_back_to_var_headed_clauses() {
        let p = parse_program("q(a). q(X). q(b).").unwrap();
        let pred = p.predicate(PredId::parse("q", 1)).unwrap();
        let key = IndexKey::of_term(&Term::atom("unseen"));
        assert_eq!(pred.candidates(key.as_ref()), &[1]);
        // An unbound first argument matches everything, in source order.
        assert_eq!(pred.candidates(None), &[0, 1, 2]);
    }

    #[test]
    fn set_clause_reindexes_the_predicate() {
        let mut p = parse_program("r(a, 1). r(b, 2).").unwrap();
        let rid = PredId::parse("r", 2);
        let b_key = IndexKey::of_term(&Term::atom("b"));
        assert_eq!(p.predicate(rid).unwrap().candidates(b_key.as_ref()), &[1]);
        // Replace clause 0 with a variable-headed one: it must now show up in
        // every bucket.
        let replacement = parse_program("r(X, 9).").unwrap().clauses()[0].clone();
        p.set_clause(0, replacement);
        assert_eq!(
            p.predicate(rid).unwrap().candidates(b_key.as_ref()),
            &[0, 1]
        );
    }

    #[test]
    fn update_clause_reindexes_head_rewrites() {
        let mut p = parse_program("r(a, 1). r(b, 2).").unwrap();
        let rid = PredId::parse("r", 2);
        // Rewrite clause 0's head first argument from `a` to `b` in place.
        p.update_clause(0, |c| {
            c.head = Term::compound("r", vec![Term::atom("b"), Term::int(1)]);
        });
        let b_key = IndexKey::of_term(&Term::atom("b"));
        let a_key = IndexKey::of_term(&Term::atom("a"));
        assert_eq!(
            p.predicate(rid).unwrap().candidates(b_key.as_ref()),
            &[0, 1]
        );
        assert!(p
            .predicate(rid)
            .unwrap()
            .candidates(a_key.as_ref())
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "must not change")]
    fn update_clause_rejects_predicate_change() {
        let mut p = parse_program("p(1).").unwrap();
        p.update_clause(0, |c| {
            c.head = Term::compound("q", vec![Term::int(1)]);
        });
    }

    #[test]
    fn float_keys_normalize_negative_zero() {
        assert_eq!(
            IndexKey::of_term(&Term::float(0.0)),
            IndexKey::of_term(&Term::float(-0.0))
        );
        assert_eq!(IndexKey::of_float(-0.0), IndexKey::of_float(0.0));
        assert_ne!(IndexKey::of_float(1.0), IndexKey::of_float(-1.0));
    }

    #[test]
    fn zero_arity_predicates_index_everything_under_no_key() {
        let p = parse_program("go. go.").unwrap();
        let pred = p.predicate(PredId::parse("go", 0)).unwrap();
        assert_eq!(pred.candidates(None), &[0, 1]);
    }

    #[test]
    fn pred_id_display_and_parse() {
        let p = PredId::parse("nrev", 2);
        assert_eq!(p.to_string(), "nrev/2");
        assert_eq!(format!("{p:?}"), "nrev/2");
        let t = Term::compound("nrev", vec![Term::var(0), Term::var(1)]);
        assert_eq!(PredId::of_term(&t), Some(p));
        assert_eq!(PredId::of_term(&Term::int(1)), None);
    }
}

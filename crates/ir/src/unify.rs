//! Substitution-based unification over [`Term`]s.
//!
//! This is the simple, persistent-map implementation used by the analysis and
//! by tests; the execution engine in `granlog-engine` uses its own
//! binding-array representation with trailing for speed.

use crate::term::{Term, VarId};
use std::collections::BTreeMap;

/// A substitution: a finite map from variables to terms.
///
/// # Example
///
/// ```
/// use granlog_ir::{Term, unify::{unify, Subst}};
/// let mut s = Subst::new();
/// let t1 = Term::compound("f", vec![Term::var(0), Term::atom("b")]);
/// let t2 = Term::compound("f", vec![Term::atom("a"), Term::var(1)]);
/// assert!(unify(&t1, &t2, &mut s));
/// assert_eq!(s.resolve(&Term::var(0)), Term::atom("a"));
/// assert_eq!(s.resolve(&Term::var(1)), Term::atom("b"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    bindings: BTreeMap<VarId, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Returns `true` if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// The binding of `v`, if any (not dereferenced further).
    pub fn get(&self, v: VarId) -> Option<&Term> {
        self.bindings.get(&v)
    }

    /// Binds `v` to `t`. Overwrites silently; callers are expected to bind
    /// only unbound variables (as `unify` does).
    pub fn bind(&mut self, v: VarId, t: Term) {
        self.bindings.insert(v, t);
    }

    /// Dereferences a term one level: follows variable bindings until an
    /// unbound variable or a non-variable term is reached.
    pub fn walk<'a>(&'a self, term: &'a Term) -> &'a Term {
        let mut cur = term;
        let mut steps = 0usize;
        while let Term::Var(v) = cur {
            match self.bindings.get(v) {
                Some(next) => {
                    cur = next;
                    steps += 1;
                    debug_assert!(steps <= self.bindings.len() + 1, "cycle in substitution");
                    if steps > self.bindings.len() + 1 {
                        break;
                    }
                }
                None => break,
            }
        }
        cur
    }

    /// Fully applies the substitution to a term, producing a new term in which
    /// every bound variable has been replaced by its (resolved) binding.
    pub fn resolve(&self, term: &Term) -> Term {
        let walked = self.walk(term);
        match walked {
            Term::Var(_) | Term::Atom(_) | Term::Int(_) | Term::Float(_) => walked.clone(),
            Term::Struct(name, args) => {
                Term::Struct(*name, args.iter().map(|a| self.resolve(a)).collect())
            }
        }
    }

    /// Iterates over bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&VarId, &Term)> {
        self.bindings.iter()
    }
}

/// Unifies `t1` and `t2` under substitution `subst`, extending it on success.
///
/// Performs the occurs check, so cyclic bindings are rejected (returns
/// `false`). On failure the substitution may contain bindings added before the
/// failure was discovered; callers that need transactional behaviour should
/// clone first.
pub fn unify(t1: &Term, t2: &Term, subst: &mut Subst) -> bool {
    let a = subst.walk(t1).clone();
    let b = subst.walk(t2).clone();
    match (&a, &b) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        (Term::Var(x), other) => {
            if occurs(*x, other, subst) {
                false
            } else {
                subst.bind(*x, other.clone());
                true
            }
        }
        (other, Term::Var(y)) => {
            if occurs(*y, other, subst) {
                false
            } else {
                subst.bind(*y, other.clone());
                true
            }
        }
        (Term::Atom(x), Term::Atom(y)) => x == y,
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Float(x), Term::Float(y)) => x == y,
        (Term::Struct(f, xs), Term::Struct(g, ys)) => {
            if f != g || xs.len() != ys.len() {
                return false;
            }
            xs.iter().zip(ys).all(|(x, y)| unify(x, y, subst))
        }
        _ => false,
    }
}

/// Returns `true` if variable `v` occurs in `term` under `subst`.
pub fn occurs(v: VarId, term: &Term, subst: &Subst) -> bool {
    match subst.walk(term) {
        Term::Var(w) => *w == v,
        Term::Atom(_) | Term::Int(_) | Term::Float(_) => false,
        Term::Struct(_, args) => args.iter().any(|a| occurs(v, a, subst)),
    }
}

/// Convenience: unifies two terms starting from the empty substitution and
/// returns the most general unifier on success.
pub fn mgu(t1: &Term, t2: &Term) -> Option<Subst> {
    let mut s = Subst::new();
    if unify(t1, t2, &mut s) {
        Some(s)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_atoms_and_ints() {
        assert!(mgu(&Term::atom("a"), &Term::atom("a")).is_some());
        assert!(mgu(&Term::atom("a"), &Term::atom("b")).is_none());
        assert!(mgu(&Term::int(3), &Term::int(3)).is_some());
        assert!(mgu(&Term::int(3), &Term::int(4)).is_none());
        assert!(mgu(&Term::int(3), &Term::atom("3")).is_none());
    }

    #[test]
    fn unify_variable_binds() {
        let s = mgu(&Term::var(0), &Term::atom("a")).unwrap();
        assert_eq!(s.resolve(&Term::var(0)), Term::atom("a"));
        let s = mgu(&Term::atom("a"), &Term::var(0)).unwrap();
        assert_eq!(s.resolve(&Term::var(0)), Term::atom("a"));
    }

    #[test]
    fn unify_structures() {
        let t1 = Term::compound(
            "f",
            vec![Term::var(0), Term::compound("g", vec![Term::var(1)])],
        );
        let t2 = Term::compound(
            "f",
            vec![Term::atom("a"), Term::compound("g", vec![Term::int(2)])],
        );
        let s = mgu(&t1, &t2).unwrap();
        assert_eq!(s.resolve(&t1), s.resolve(&t2));
        assert_eq!(s.resolve(&Term::var(1)), Term::int(2));
    }

    #[test]
    fn unify_arity_mismatch_fails() {
        let t1 = Term::compound("f", vec![Term::var(0)]);
        let t2 = Term::compound("f", vec![Term::var(1), Term::var(2)]);
        assert!(mgu(&t1, &t2).is_none());
    }

    #[test]
    fn variable_chains_resolve() {
        // X = Y, Y = Z, Z = 42.
        let mut s = Subst::new();
        assert!(unify(&Term::var(0), &Term::var(1), &mut s));
        assert!(unify(&Term::var(1), &Term::var(2), &mut s));
        assert!(unify(&Term::var(2), &Term::int(42), &mut s));
        assert_eq!(s.resolve(&Term::var(0)), Term::int(42));
    }

    #[test]
    fn occurs_check_rejects_cyclic_binding() {
        // X = f(X) must fail.
        let t = Term::compound("f", vec![Term::var(0)]);
        assert!(mgu(&Term::var(0), &t).is_none());
    }

    #[test]
    fn self_unification_of_variable_is_noop() {
        let s = mgu(&Term::var(5), &Term::var(5)).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn unify_lists() {
        // [H|T] = [1,2,3]
        let pat = Term::cons(Term::var(0), Term::var(1));
        let lst = Term::list(vec![Term::int(1), Term::int(2), Term::int(3)]);
        let s = mgu(&pat, &lst).unwrap();
        assert_eq!(s.resolve(&Term::var(0)), Term::int(1));
        assert_eq!(s.resolve(&Term::var(1)).list_length(), Some(2));
    }

    #[test]
    fn resolve_is_idempotent() {
        let t1 = Term::compound("f", vec![Term::var(0), Term::var(1)]);
        let t2 = Term::compound("f", vec![Term::var(1), Term::atom("k")]);
        let s = mgu(&t1, &t2).unwrap();
        let once = s.resolve(&t1);
        let twice = s.resolve(&once);
        assert_eq!(once, twice);
        assert!(once.is_ground());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_ground_term() -> impl Strategy<Value = Term> {
        let leaf = prop_oneof![
            (0i64..100).prop_map(Term::int),
            "[a-c]{1,3}".prop_map(|s| Term::atom(&s)),
        ];
        leaf.prop_recursive(3, 24, 3, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(|args| Term::compound("f", args))
        })
    }

    fn arb_term() -> impl Strategy<Value = Term> {
        let leaf = prop_oneof![
            (0usize..4).prop_map(Term::var),
            (0i64..100).prop_map(Term::int),
            "[a-c]{1,3}".prop_map(|s| Term::atom(&s)),
        ];
        leaf.prop_recursive(3, 24, 3, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(|args| Term::compound("f", args))
        })
    }

    proptest! {
        #[test]
        fn ground_terms_unify_iff_equal(a in arb_ground_term(), b in arb_ground_term()) {
            let unifies = mgu(&a, &b).is_some();
            prop_assert_eq!(unifies, a == b);
        }

        #[test]
        fn unification_produces_common_instance(a in arb_term(), b in arb_term()) {
            if let Some(s) = mgu(&a, &b) {
                prop_assert_eq!(s.resolve(&a), s.resolve(&b));
            }
        }

        #[test]
        fn term_unifies_with_itself(a in arb_term()) {
            prop_assert!(mgu(&a, &a).is_some());
        }

        #[test]
        fn fresh_variable_unifies_with_anything(a in arb_ground_term()) {
            let s = mgu(&Term::var(99), &a).unwrap();
            prop_assert_eq!(s.resolve(&Term::var(99)), a);
        }
    }
}

//! # granlog-ir
//!
//! Intermediate representation for logic programs, used by the granularity
//! analysis described in *Task Granularity Analysis in Logic Programs*
//! (Debray, Lin & Hermenegildo, PLDI 1990) and by the execution substrates
//! that reproduce its evaluation.
//!
//! The crate provides:
//!
//! * [`Symbol`] — a cheap interned representation of Prolog atoms and functor
//!   names (see [`symbol`]).
//! * [`Term`] — the Prolog term algebra: variables, atoms, integers, floats
//!   and compound terms, with list sugar (see [`term`]).
//! * [`parser`] — a tokenizer and operator-precedence reader for a practical
//!   subset of ISO Prolog syntax, including the directives the analysis
//!   consumes (`:- mode ...`, `:- measure ...`, `:- parallel ...`).
//! * [`Clause`], [`Program`], [`PredId`] — clause and program containers
//!   (see [`clause`] and [`program`]).
//! * [`modes`] — argument mode (input/output) declarations and a simple
//!   left-to-right mode inference fallback.
//! * [`callgraph`] — predicate call graphs, Tarjan SCCs, topological
//!   processing order and the recursion classification used in Section 3 of
//!   the paper (nonrecursive / simple recursive / mutually recursive).
//! * [`unify`] — substitution-based unification over [`Term`]s.
//!
//! # Example
//!
//! ```
//! use granlog_ir::parser::parse_program;
//!
//! let src = r#"
//!     :- mode nrev(+, -).
//!     nrev([], []).
//!     nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).
//! "#;
//! let program = parse_program(src).unwrap();
//! assert_eq!(program.predicates().count(), 1);
//! ```

pub mod callgraph;
pub mod clause;
pub mod modes;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod symbol;
pub mod term;
pub mod unify;

pub use callgraph::{CallGraph, RecursionClass, Scc};
pub use clause::{Clause, ClauseId};
pub use modes::{ArgMode, ModeDecl};
pub use parser::{parse_program, parse_term, ParseError};
pub use program::{ClauseIndex, Directive, IndexKey, PredId, Predicate, Program};
pub use symbol::{FastHasher, FastMap, Symbol};
pub use term::{Term, VarId};

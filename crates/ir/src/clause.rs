//! Clauses and structured views of clause bodies.

use crate::program::PredId;
use crate::symbol::{well_known, Symbol};
use crate::term::Term;
use std::fmt;

/// Index of a clause within a [`crate::Program`].
pub type ClauseId = usize;

/// A program clause `Head :- Body.` (facts have body `true`).
///
/// Variables inside `head` and `body` are clause-local indices into
/// [`Clause::var_names`].
///
/// # Example
///
/// ```
/// use granlog_ir::parser::parse_program;
/// let p = parse_program("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).").unwrap();
/// let c = &p.clauses()[1];
/// assert_eq!(c.head_pred().unwrap().to_string(), "app/3");
/// assert_eq!(c.body_literals().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// The clause head (an atom or compound term).
    pub head: Term,
    /// The clause body; the atom `true` for facts.
    pub body: Term,
    /// Source names of the clause's variables, indexed by [`crate::VarId`].
    pub var_names: Vec<Symbol>,
}

impl Clause {
    /// Creates a clause from a head, body and variable-name table.
    pub fn new(head: Term, body: Term, var_names: Vec<Symbol>) -> Self {
        Clause {
            head,
            body,
            var_names,
        }
    }

    /// Creates a fact (a clause whose body is `true`).
    pub fn fact(head: Term, var_names: Vec<Symbol>) -> Self {
        Clause {
            head,
            body: Term::Atom(well_known::true_()),
            var_names,
        }
    }

    /// Returns `true` if the clause is a fact (body is the atom `true`).
    pub fn is_fact(&self) -> bool {
        matches!(&self.body, Term::Atom(s) if *s == well_known::true_())
    }

    /// The predicate defined by this clause, if the head is callable.
    pub fn head_pred(&self) -> Option<PredId> {
        self.head
            .functor()
            .map(|(name, arity)| PredId::new(name, arity))
    }

    /// Number of distinct variables in the clause.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Flattens the body into a left-to-right list of literals.
    ///
    /// Conjunctions (`,`) and parallel conjunctions (`&`) are flattened;
    /// control structures (`;`, `->`, `\+`) are kept as single literals, as is
    /// each ordinary goal. The atom `true` yields an empty list.
    pub fn body_literals(&self) -> Vec<&Term> {
        let mut out = Vec::new();
        collect_literals(&self.body, &mut out);
        out
    }

    /// Structured view of the body (see [`BodyView`]).
    pub fn body_view(&self) -> BodyView<'_> {
        BodyView::of(&self.body)
    }

    /// Returns the goal terms called by this clause, descending into control
    /// structures (`;`, `->`, `\+`, `&`, `,`). Used for call-graph
    /// construction. Control atoms (`true`, `!`) are not calls and are
    /// skipped.
    ///
    /// Metacalls are reported as a conservative over-approximation of their
    /// runtime targets: `call(G)` is transparent (the result names `G`'s own
    /// target, so `call(q(X))` reports `q/1`, not `call/1`), and a variable
    /// goal — bare (`p :- X.`) or behind `call/1` (`p :- call(X).`) — is
    /// kept as the `Term::Var` leaf itself, the "may call any predicate"
    /// marker. Callers that map goals to [`PredId`]s must treat `Var` leaves
    /// conservatively (see [`crate::callgraph::CallGraph::build`], which
    /// over-approximates them as edges to every defined predicate) rather
    /// than silently dropping them.
    pub fn called_goals(&self) -> Vec<&Term> {
        let mut out = Vec::new();
        collect_called_goals(&self.body, &mut out);
        out
    }

    /// Returns `true` if the clause body contains a cut (`!`) anywhere,
    /// including inside control structures. Cut makes clause selection
    /// order-sensitive, which analyses that reorder or parallelise goals
    /// must respect.
    pub fn has_cut(&self) -> bool {
        self.body_view().has_cut()
    }

    /// Renders the clause with its source variable names.
    pub fn display(&self) -> ClauseDisplay<'_> {
        ClauseDisplay(self)
    }
}

fn collect_literals<'a>(body: &'a Term, out: &mut Vec<&'a Term>) {
    match body {
        Term::Atom(s) if *s == well_known::true_() => {}
        Term::Struct(s, args)
            if (*s == well_known::comma() || *s == well_known::par_and()) && args.len() == 2 =>
        {
            collect_literals(&args[0], out);
            collect_literals(&args[1], out);
        }
        other => out.push(other),
    }
}

fn collect_called_goals<'a>(body: &'a Term, out: &mut Vec<&'a Term>) {
    match body {
        Term::Atom(s) if *s == well_known::true_() || *s == well_known::get().cut => {}
        Term::Struct(s, args)
            if args.len() == 2
                && (*s == well_known::comma()
                    || *s == well_known::par_and()
                    || *s == well_known::semicolon()
                    || *s == well_known::arrow()) =>
        {
            collect_called_goals(&args[0], out);
            collect_called_goals(&args[1], out);
        }
        Term::Struct(s, args) if *s == well_known::get().not && args.len() == 1 => {
            collect_called_goals(&args[0], out);
        }
        // `call/1` is transparent: the called goal is its argument. A
        // variable argument falls through to the `Var` leaf below, so
        // `p :- call(X).` and `p :- X.` report the same unknown-target
        // marker instead of the former naming a phantom `call/1` predicate.
        Term::Struct(s, args) if s.as_str() == "call" && args.len() == 1 => {
            collect_called_goals(&args[0], out);
        }
        other => out.push(other),
    }
}

/// A structured, borrowed view of a clause body.
///
/// This decomposes the control skeleton that both the execution engine and the
/// cost analysis care about, leaving ordinary goals as leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodyView<'a> {
    /// The trivial body `true`.
    True,
    /// The cut `!`: commits to the choices made since the clause was
    /// activated. Classified separately from ordinary goals because it is
    /// control, not a call — it constrains goal reordering and pruning.
    Cut,
    /// A sequential conjunction `G1, G2, ..., Gn` (flattened, n >= 2).
    Conj(Vec<BodyView<'a>>),
    /// A parallel conjunction `G1 & G2 & ... & Gn` (flattened, n >= 2).
    Par(Vec<BodyView<'a>>),
    /// A disjunction `G1 ; G2`.
    Disj(Box<BodyView<'a>>, Box<BodyView<'a>>),
    /// An if-then-else `(Cond -> Then ; Else)`.
    IfThenElse(Box<BodyView<'a>>, Box<BodyView<'a>>, Box<BodyView<'a>>),
    /// An if-then without an else `(Cond -> Then)`.
    IfThen(Box<BodyView<'a>>, Box<BodyView<'a>>),
    /// Negation as failure `\+ G`.
    Not(Box<BodyView<'a>>),
    /// An ordinary goal.
    Goal(&'a Term),
}

impl<'a> BodyView<'a> {
    /// Builds the structured view of a body term.
    pub fn of(body: &'a Term) -> BodyView<'a> {
        match body {
            Term::Atom(s) if *s == well_known::true_() => BodyView::True,
            Term::Atom(s) if *s == well_known::get().cut => BodyView::Cut,
            Term::Struct(s, args) if *s == well_known::comma() && args.len() == 2 => {
                let mut items = Vec::new();
                flatten_assoc(body, well_known::comma(), &mut items);
                BodyView::Conj(items.into_iter().map(BodyView::of).collect())
            }
            Term::Struct(s, args) if *s == well_known::par_and() && args.len() == 2 => {
                let mut items = Vec::new();
                flatten_assoc(body, well_known::par_and(), &mut items);
                BodyView::Par(items.into_iter().map(BodyView::of).collect())
            }
            Term::Struct(s, args) if *s == well_known::semicolon() && args.len() == 2 => {
                // Recognize (Cond -> Then ; Else).
                if let Term::Struct(arrow, ite) = &args[0] {
                    if *arrow == well_known::arrow() && ite.len() == 2 {
                        return BodyView::IfThenElse(
                            Box::new(BodyView::of(&ite[0])),
                            Box::new(BodyView::of(&ite[1])),
                            Box::new(BodyView::of(&args[1])),
                        );
                    }
                }
                BodyView::Disj(
                    Box::new(BodyView::of(&args[0])),
                    Box::new(BodyView::of(&args[1])),
                )
            }
            Term::Struct(s, args) if *s == well_known::arrow() && args.len() == 2 => {
                BodyView::IfThen(
                    Box::new(BodyView::of(&args[0])),
                    Box::new(BodyView::of(&args[1])),
                )
            }
            Term::Struct(s, args) if *s == well_known::get().not && args.len() == 1 => {
                BodyView::Not(Box::new(BodyView::of(&args[0])))
            }
            other => BodyView::Goal(other),
        }
    }

    /// Iterates over every goal leaf in the view.
    pub fn goals(&self) -> Vec<&'a Term> {
        let mut out = Vec::new();
        self.collect_goals(&mut out);
        out
    }

    /// `true` if a cut occurs anywhere in the view.
    pub fn has_cut(&self) -> bool {
        match self {
            BodyView::Cut => true,
            BodyView::True | BodyView::Goal(_) => false,
            BodyView::Conj(items) | BodyView::Par(items) => items.iter().any(BodyView::has_cut),
            BodyView::Disj(a, b) | BodyView::IfThen(a, b) => a.has_cut() || b.has_cut(),
            BodyView::IfThenElse(c, t, e) => c.has_cut() || t.has_cut() || e.has_cut(),
            BodyView::Not(g) => g.has_cut(),
        }
    }

    fn collect_goals(&self, out: &mut Vec<&'a Term>) {
        match self {
            BodyView::True | BodyView::Cut => {}
            BodyView::Conj(items) | BodyView::Par(items) => {
                for item in items {
                    item.collect_goals(out);
                }
            }
            BodyView::Disj(a, b) | BodyView::IfThen(a, b) => {
                a.collect_goals(out);
                b.collect_goals(out);
            }
            BodyView::IfThenElse(c, t, e) => {
                c.collect_goals(out);
                t.collect_goals(out);
                e.collect_goals(out);
            }
            BodyView::Not(g) => g.collect_goals(out),
            BodyView::Goal(g) => out.push(g),
        }
    }
}

fn flatten_assoc<'a>(term: &'a Term, op: Symbol, out: &mut Vec<&'a Term>) {
    match term {
        Term::Struct(s, args) if *s == op && args.len() == 2 => {
            flatten_assoc(&args[0], op, out);
            flatten_assoc(&args[1], op, out);
        }
        other => out.push(other),
    }
}

/// Display adapter rendering a clause with its variable names.
#[derive(Debug, Clone, Copy)]
pub struct ClauseDisplay<'a>(&'a Clause);

impl fmt::Display for ClauseDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.0;
        crate::pretty::fmt_term(&c.head, Some(&c.var_names), f)?;
        if !c.is_fact() {
            write!(f, " :- ")?;
            crate::pretty::fmt_term(&c.body, Some(&c.var_names), f)?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn fact_detection() {
        let p = parse_program("p(a). q(X) :- p(X).").unwrap();
        assert!(p.clauses()[0].is_fact());
        assert!(!p.clauses()[1].is_fact());
        assert!(p.clauses()[0].body_literals().is_empty());
    }

    #[test]
    fn body_literals_flatten_conjunctions() {
        let p = parse_program("p(X) :- a(X), b(X), c(X).").unwrap();
        let lits = p.clauses()[0].body_literals();
        assert_eq!(lits.len(), 3);
        assert_eq!(lits[0].functor().unwrap().0.as_str(), "a");
        assert_eq!(lits[2].functor().unwrap().0.as_str(), "c");
    }

    #[test]
    fn body_literals_flatten_parallel_conjunctions() {
        let p = parse_program("p(X) :- a(X) & b(X), c(X).").unwrap();
        let lits = p.clauses()[0].body_literals();
        assert_eq!(lits.len(), 3);
    }

    #[test]
    fn body_view_if_then_else() {
        let p = parse_program("p(X) :- ( X > 1 -> a(X) ; b(X) ).").unwrap();
        match p.clauses()[0].body_view() {
            BodyView::IfThenElse(c, t, e) => {
                assert!(matches!(*c, BodyView::Goal(_)));
                assert!(matches!(*t, BodyView::Goal(_)));
                assert!(matches!(*e, BodyView::Goal(_)));
            }
            other => panic!("expected if-then-else, got {other:?}"),
        }
    }

    #[test]
    fn body_view_parallel() {
        let p = parse_program("p(X) :- a(X) & b(X) & c(X).").unwrap();
        match p.clauses()[0].body_view() {
            BodyView::Par(items) => assert_eq!(items.len(), 3),
            other => panic!("expected parallel conjunction, got {other:?}"),
        }
    }

    #[test]
    fn called_goals_descend_into_control() {
        let p = parse_program("p(X) :- ( a(X) -> b(X) ; c(X), d(X) ).").unwrap();
        let goals = p.clauses()[0].called_goals();
        let names: Vec<&str> = goals
            .iter()
            .map(|g| g.functor().unwrap().0.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn called_goals_see_through_call_1() {
        let p = parse_program("p(X) :- q(X), call(r(X, 1)).").unwrap();
        let goals = p.clauses()[0].called_goals();
        let names: Vec<&str> = goals
            .iter()
            .map(|g| g.functor().unwrap().0.as_str())
            .collect();
        // `call(r(X, 1))` reports `r/2`, not a phantom `call/1`.
        assert_eq!(names, vec!["q", "r"]);
        assert_eq!(goals[1].functor().unwrap().1, 2);
    }

    #[test]
    fn variable_goals_report_a_consistent_unknown_marker() {
        // Bare variable body and `call(X)` are the same metacall; both must
        // surface as the `Var` leaf (the "may call anything" marker).
        let bare = parse_program("p(X) :- X.").unwrap();
        let wrapped = parse_program("p(X) :- call(X).").unwrap();
        let in_control = parse_program("p(X) :- ( X ; q(X) ).").unwrap();
        for prog in [&bare, &wrapped] {
            let goals = prog.clauses()[0].called_goals();
            assert_eq!(goals.len(), 1);
            assert!(goals[0].is_var(), "expected Var leaf, got {:?}", goals[0]);
        }
        let goals = in_control.clauses()[0].called_goals();
        assert_eq!(goals.len(), 2);
        assert!(goals[0].is_var());
        assert_eq!(goals[1].functor().unwrap().0.as_str(), "q");
    }

    #[test]
    fn call_with_extra_args_is_an_ordinary_goal() {
        // The engine has no `call/N` builtin for N > 1; such a goal really
        // is a call of the `call/N` predicate, so it is reported as-is.
        let p = parse_program("p(X) :- call(q, X).").unwrap();
        let goals = p.clauses()[0].called_goals();
        assert_eq!(goals.len(), 1);
        assert_eq!(goals[0].functor().unwrap(), (Symbol::intern("call"), 2));
    }

    #[test]
    fn clause_display_uses_source_names() {
        let p = parse_program("nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).").unwrap();
        let shown = p.clauses()[0].display().to_string();
        assert!(shown.contains("nrev([H|L],R)"), "got: {shown}");
        assert!(shown.contains("R1"));
        assert!(shown.ends_with('.'));
    }

    #[test]
    fn cut_is_classified_as_control() {
        let p = parse_program("m(X, [X|_]) :- !. m(X, [_|T]) :- m(X, T).").unwrap();
        let c = &p.clauses()[0];
        assert!(c.has_cut());
        assert!(!p.clauses()[1].has_cut());
        assert_eq!(c.body_view(), BodyView::Cut);
        // `!` is control, not a call: call graphs must not see it.
        assert!(c.called_goals().is_empty());
    }

    #[test]
    fn has_cut_descends_into_control() {
        let p = parse_program("p(X) :- ( q(X) -> r(X), ! ; s(X) ).").unwrap();
        assert!(p.clauses()[0].has_cut());
        let p = parse_program("p(X) :- ( q(X) -> r(X) ; s(X) ).").unwrap();
        assert!(!p.clauses()[0].has_cut());
    }

    #[test]
    fn head_pred() {
        let p = parse_program("foo(a, b, c).").unwrap();
        let id = p.clauses()[0].head_pred().unwrap();
        assert_eq!(id.name.as_str(), "foo");
        assert_eq!(id.arity, 3);
    }
}

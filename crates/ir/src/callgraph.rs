//! Predicate call graphs, strongly-connected components and the recursion
//! classification used by the granularity analysis.
//!
//! Section 3 of the paper distinguishes *nonrecursive*, *simple recursive* and
//! *mutually recursive* clauses, and processes the call graph in topological
//! order so that callees are analysed before callers. This module provides
//! exactly those notions: [`CallGraph::sccs`] (Tarjan), the bottom-up
//! [`CallGraph::topological_sccs`] order, and
//! [`CallGraph::classify_clause`] / [`CallGraph::classify_predicate`].

use crate::clause::Clause;
use crate::program::{PredId, Program};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How a clause (or predicate) recurses, following the paper's terminology.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum RecursionClass {
    /// No body literal is part of a call-graph cycle through the head.
    NonRecursive,
    /// Recursive literals exist and all of them call the head's own predicate.
    SimpleRecursive,
    /// Recursive literals exist that call other predicates in the head's SCC.
    MutuallyRecursive,
}

impl fmt::Display for RecursionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecursionClass::NonRecursive => write!(f, "nonrecursive"),
            RecursionClass::SimpleRecursive => write!(f, "simple recursive"),
            RecursionClass::MutuallyRecursive => write!(f, "mutually recursive"),
        }
    }
}

/// A strongly-connected component of the call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scc {
    /// The predicates in the component.
    pub members: Vec<PredId>,
    /// `true` if the component contains a cycle (more than one member, or a
    /// single member that calls itself).
    pub recursive: bool,
}

impl Scc {
    /// Returns `true` if `pred` belongs to this component.
    pub fn contains(&self, pred: PredId) -> bool {
        self.members.contains(&pred)
    }
}

/// The call graph of a program, restricted to predicates the program defines.
///
/// Calls to builtins and to undefined predicates appear in
/// [`CallGraph::external_calls`] but are not graph nodes.
#[derive(Debug, Clone)]
pub struct CallGraph {
    nodes: Vec<PredId>,
    index_of: BTreeMap<PredId, usize>,
    edges: Vec<BTreeSet<usize>>,
    external: BTreeSet<PredId>,
    sccs: Vec<Scc>,
    scc_of: BTreeMap<PredId, usize>,
    topo: Vec<usize>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    pub fn build(program: &Program) -> Self {
        let nodes: Vec<PredId> = program.predicates().map(|p| p.id).collect();
        let index_of: BTreeMap<PredId, usize> =
            nodes.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
        let mut external = BTreeSet::new();

        for (caller_idx, &caller) in nodes.iter().enumerate() {
            for clause in program.clauses_of(caller) {
                for goal in clause.called_goals() {
                    match PredId::of_term(goal) {
                        Some(callee) => match index_of.get(&callee) {
                            Some(&callee_idx) => {
                                edges[caller_idx].insert(callee_idx);
                            }
                            None => {
                                external.insert(callee);
                            }
                        },
                        // An unknown-target metacall (a `Var` leaf from
                        // `called_goals`) may call any predicate at run
                        // time; over-approximate it as an edge to every
                        // defined predicate so SCC-based analyses stay
                        // sound instead of silently dropping the call.
                        None if goal.is_var() => {
                            for callee_idx in 0..nodes.len() {
                                edges[caller_idx].insert(callee_idx);
                            }
                        }
                        None => {}
                    }
                }
            }
        }

        let mut graph = CallGraph {
            nodes,
            index_of,
            edges,
            external,
            sccs: Vec::new(),
            scc_of: BTreeMap::new(),
            topo: Vec::new(),
        };
        graph.compute_sccs();
        graph
    }

    /// The predicates that are nodes of the graph.
    pub fn nodes(&self) -> &[PredId] {
        &self.nodes
    }

    /// Predicates called by the program but not defined by it (builtins,
    /// library predicates, typos).
    pub fn external_calls(&self) -> &BTreeSet<PredId> {
        &self.external
    }

    /// Direct callees of `pred` (only defined predicates).
    pub fn callees(&self, pred: PredId) -> Vec<PredId> {
        match self.index_of.get(&pred) {
            Some(&i) => self.edges[i].iter().map(|&j| self.nodes[j]).collect(),
            None => Vec::new(),
        }
    }

    /// Returns `true` if `caller` has a direct edge to `callee`.
    pub fn calls(&self, caller: PredId, callee: PredId) -> bool {
        match (self.index_of.get(&caller), self.index_of.get(&callee)) {
            (Some(&i), Some(&j)) => self.edges[i].contains(&j),
            _ => false,
        }
    }

    /// The strongly-connected components, in no particular order.
    pub fn sccs(&self) -> &[Scc] {
        &self.sccs
    }

    /// The SCC containing `pred`, if it is a node.
    pub fn scc_of(&self, pred: PredId) -> Option<&Scc> {
        self.scc_of.get(&pred).map(|&i| &self.sccs[i])
    }

    /// SCCs in bottom-up (callee-first) topological order — the order in which
    /// the paper processes the call graph.
    pub fn topological_sccs(&self) -> Vec<&Scc> {
        self.topo.iter().map(|&i| &self.sccs[i]).collect()
    }

    /// Predicates in bottom-up topological order (members of the same SCC are
    /// adjacent).
    pub fn topological_predicates(&self) -> Vec<PredId> {
        self.topological_sccs()
            .into_iter()
            .flat_map(|scc| scc.members.iter().copied())
            .collect()
    }

    /// Returns `true` if the two predicates belong to the same SCC.
    pub fn same_scc(&self, a: PredId, b: PredId) -> bool {
        match (self.scc_of.get(&a), self.scc_of.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Returns `true` if `pred` is recursive (its SCC contains a cycle).
    pub fn is_recursive(&self, pred: PredId) -> bool {
        self.scc_of(pred).map(|s| s.recursive).unwrap_or(false)
    }

    /// Is a body goal of a clause with head predicate `head` a *recursive
    /// literal*, i.e. part of a call-graph cycle containing `head`?
    pub fn literal_is_recursive(&self, head: PredId, goal_pred: PredId) -> bool {
        self.same_scc(head, goal_pred) && self.is_recursive(head)
    }

    /// Classifies a clause as nonrecursive, simple recursive or mutually
    /// recursive (Section 3 of the paper).
    pub fn classify_clause(&self, clause: &Clause) -> RecursionClass {
        let Some(head) = clause.head_pred() else {
            return RecursionClass::NonRecursive;
        };
        let mut any_recursive = false;
        let mut any_mutual = false;
        for goal in clause.called_goals() {
            if let Some(goal_pred) = PredId::of_term(goal) {
                if self.literal_is_recursive(head, goal_pred) {
                    any_recursive = true;
                    if goal_pred != head {
                        any_mutual = true;
                    }
                }
            }
        }
        if !any_recursive {
            RecursionClass::NonRecursive
        } else if any_mutual {
            RecursionClass::MutuallyRecursive
        } else {
            RecursionClass::SimpleRecursive
        }
    }

    /// Classifies a predicate: mutually recursive if its SCC has several
    /// members, simple recursive if it only calls itself, nonrecursive
    /// otherwise.
    pub fn classify_predicate(&self, pred: PredId) -> RecursionClass {
        match self.scc_of(pred) {
            Some(scc) if scc.recursive && scc.members.len() > 1 => {
                RecursionClass::MutuallyRecursive
            }
            Some(scc) if scc.recursive => RecursionClass::SimpleRecursive,
            _ => RecursionClass::NonRecursive,
        }
    }

    fn compute_sccs(&mut self) {
        // Iterative Tarjan to avoid recursion-depth limits on deep programs.
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        #[derive(Clone)]
        struct Frame {
            node: usize,
            succs: Vec<usize>,
            next_succ: usize,
        }

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame {
                node: start,
                succs: self.edges[start].iter().copied().collect(),
                next_succ: 0,
            }];
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(frame) = call_stack.last_mut() {
                let v = frame.node;
                if frame.next_succ < frame.succs.len() {
                    let w = frame.succs[frame.next_succ];
                    frame.next_succ += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push(Frame {
                            node: w,
                            succs: self.edges[w].iter().copied().collect(),
                            next_succ: 0,
                        });
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    // All successors processed.
                    if lowlink[v] == index[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(component);
                    }
                    call_stack.pop();
                    if let Some(parent) = call_stack.last() {
                        let p = parent.node;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                }
            }
        }

        // Tarjan emits SCCs in reverse topological order of the condensation
        // (callees before callers when edges point caller -> callee ... in fact
        // Tarjan emits a component only after all components it can reach have
        // been emitted), which is exactly the bottom-up order we need.
        self.sccs = sccs
            .iter()
            .map(|component| {
                let members: Vec<PredId> = component.iter().map(|&i| self.nodes[i]).collect();
                let recursive = members.len() > 1
                    || component
                        .first()
                        .map(|&i| self.edges[i].contains(&i))
                        .unwrap_or(false);
                Scc { members, recursive }
            })
            .collect();
        self.scc_of = self
            .sccs
            .iter()
            .enumerate()
            .flat_map(|(i, scc)| scc.members.iter().map(move |&p| (p, i)))
            .collect();
        self.topo = (0..self.sccs.len()).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn pid(name: &str, arity: usize) -> PredId {
        PredId::parse(name, arity)
    }

    const NREV: &str = r#"
        nrev([], []).
        nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).
    "#;

    #[test]
    fn edges_and_external_calls() {
        let p = parse_program("p(X) :- q(X), r(X), X > 1. q(X) :- p(X). r(_).").unwrap();
        let g = CallGraph::build(&p);
        assert!(g.calls(pid("p", 1), pid("q", 1)));
        assert!(g.calls(pid("q", 1), pid("p", 1)));
        assert!(g.calls(pid("p", 1), pid("r", 1)));
        assert!(!g.calls(pid("r", 1), pid("p", 1)));
        assert!(g.external_calls().contains(&pid(">", 2)));
    }

    #[test]
    fn nrev_sccs_and_topological_order() {
        let p = parse_program(NREV).unwrap();
        let g = CallGraph::build(&p);
        assert_eq!(g.sccs().len(), 2);
        let order = g.topological_predicates();
        let pos_append = order.iter().position(|&x| x == pid("append", 3)).unwrap();
        let pos_nrev = order.iter().position(|&x| x == pid("nrev", 2)).unwrap();
        assert!(
            pos_append < pos_nrev,
            "append must be processed before nrev"
        );
    }

    #[test]
    fn recursion_classification_simple() {
        let p = parse_program(NREV).unwrap();
        let g = CallGraph::build(&p);
        assert_eq!(
            g.classify_predicate(pid("nrev", 2)),
            RecursionClass::SimpleRecursive
        );
        assert_eq!(
            g.classify_predicate(pid("append", 3)),
            RecursionClass::SimpleRecursive
        );
        // Clause-level: the fact is nonrecursive, the recursive clause is simple recursive.
        let nrev_clauses = p.clauses_of(pid("nrev", 2));
        assert_eq!(
            g.classify_clause(nrev_clauses[0]),
            RecursionClass::NonRecursive
        );
        assert_eq!(
            g.classify_clause(nrev_clauses[1]),
            RecursionClass::SimpleRecursive
        );
    }

    #[test]
    fn recursion_classification_mutual() {
        let src = r#"
            even(0).
            even(s(X)) :- odd(X).
            odd(s(X)) :- even(X).
        "#;
        let p = parse_program(src).unwrap();
        let g = CallGraph::build(&p);
        assert_eq!(
            g.classify_predicate(pid("even", 1)),
            RecursionClass::MutuallyRecursive
        );
        assert_eq!(
            g.classify_predicate(pid("odd", 1)),
            RecursionClass::MutuallyRecursive
        );
        assert!(g.same_scc(pid("even", 1), pid("odd", 1)));
        let even_clauses = p.clauses_of(pid("even", 1));
        assert_eq!(
            g.classify_clause(even_clauses[1]),
            RecursionClass::MutuallyRecursive
        );
    }

    #[test]
    fn nonrecursive_predicate() {
        let p = parse_program("top(X) :- mid(X). mid(X) :- leaf(X). leaf(_).").unwrap();
        let g = CallGraph::build(&p);
        for name in ["top", "mid", "leaf"] {
            assert_eq!(
                g.classify_predicate(pid(name, 1)),
                RecursionClass::NonRecursive
            );
            assert!(!g.is_recursive(pid(name, 1)));
        }
        let order = g.topological_predicates();
        assert_eq!(order, vec![pid("leaf", 1), pid("mid", 1), pid("top", 1)]);
    }

    #[test]
    fn self_loop_is_recursive_even_as_singleton_scc() {
        let p = parse_program("loop(X) :- loop(X). lone(_).").unwrap();
        let g = CallGraph::build(&p);
        assert!(g.is_recursive(pid("loop", 1)));
        assert!(!g.is_recursive(pid("lone", 1)));
    }

    #[test]
    fn calls_inside_control_structures_are_edges() {
        let p = parse_program("p(X) :- ( q(X) -> r(X) ; s(X) ). q(_). r(_). s(_).").unwrap();
        let g = CallGraph::build(&p);
        for callee in ["q", "r", "s"] {
            assert!(
                g.calls(pid("p", 1), pid(callee, 1)),
                "missing edge to {callee}"
            );
        }
    }

    #[test]
    fn callees_listing() {
        let p = parse_program(NREV).unwrap();
        let g = CallGraph::build(&p);
        let callees = g.callees(pid("nrev", 2));
        assert!(callees.contains(&pid("nrev", 2)));
        assert!(callees.contains(&pid("append", 3)));
        assert_eq!(g.callees(pid("missing", 9)), Vec::<PredId>::new());
    }

    #[test]
    fn variable_goal_over_approximates_as_edges_to_everything() {
        // `p :- X.` may call any predicate at run time; the graph must show
        // p → {every defined predicate}, which also pulls p into a cycle
        // with itself (it may call itself through the metacall).
        let p = parse_program("p(X) :- q(X), X. q(_). r(_).").unwrap();
        let g = CallGraph::build(&p);
        for callee in [("p", 1), ("q", 1), ("r", 1)] {
            assert!(
                g.calls(pid("p", 1), pid(callee.0, callee.1)),
                "missing conservative edge to {}/{}",
                callee.0,
                callee.1
            );
        }
        // `call(q(X))` is transparent: a precise edge, no `call/1` external.
        let p = parse_program("p(X) :- call(q(X)). q(_).").unwrap();
        let g = CallGraph::build(&p);
        assert!(g.calls(pid("p", 1), pid("q", 1)));
        assert!(!g.external_calls().contains(&pid("call", 1)));
    }

    #[test]
    fn long_chain_does_not_overflow_stack() {
        // 2000-deep call chain exercises the iterative Tarjan implementation.
        let mut src = String::new();
        for i in 0..2000 {
            src.push_str(&format!("p{}(X) :- p{}(X).\n", i, i + 1));
        }
        src.push_str("p2000(done).\n");
        let p = parse_program(&src).unwrap();
        let g = CallGraph::build(&p);
        assert_eq!(g.sccs().len(), 2001);
        let order = g.topological_predicates();
        assert_eq!(order.first().copied(), Some(pid("p2000", 1)));
        assert_eq!(order.last().copied(), Some(pid("p0", 1)));
    }
}

//! A tokenizer and operator-precedence reader for a practical subset of
//! Prolog syntax.
//!
//! Supported syntax:
//!
//! * facts, rules (`:-`) and directives (`:- ...`), terminated by `.`;
//! * atoms (unquoted, quoted and symbolic), variables, integers, floats;
//! * lists `[a, b | T]`, curly braces `{...}`, parenthesised terms;
//! * the standard operator table, extended with `&` (parallel conjunction, as
//!   in &-Prolog) at priority 950, binding tighter than `,`;
//! * `%` line comments and `/* ... */` block comments.
//!
//! Directives recognised and turned into [`Directive`] values:
//! `mode`, `measure`, `parallel`, `sequential`, `entry`. Anything else is kept
//! as [`Directive::Other`].

use crate::clause::Clause;
use crate::modes::ArgMode;
use crate::program::{Directive, PredId, Program};
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::HashMap;
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// 1-based line number where the error was detected.
    pub line: usize,
    /// 1-based column number where the error was detected.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Atom(String),
    Var(String),
    Int(i64),
    Float(f64),
    Punct(char), // ( ) [ ] { } , |
    End,         // clause-terminating '.'
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
    column: usize,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    column: usize,
}

const SYMBOL_CHARS: &str = "+-*/\\^<>=~:.?@#&$";

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            column: self.column,
        }
    }

    fn peek_char(&self) -> Option<char> {
        if self.pos < self.src.len() {
            Some(self.src[self.pos] as char)
        } else {
            None
        }
    }

    fn peek_char_at(&self, offset: usize) -> Option<char> {
        self.src.get(self.pos + offset).map(|&b| b as char)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek_char() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some('%') => {
                    while let Some(c) = self.peek_char() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek_char_at(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek_char() {
                            Some('*') if self.peek_char_at(1) == Some('/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_ws_and_comments()?;
            let line = self.line;
            let column = self.column;
            let Some(c) = self.peek_char() else {
                tokens.push(Token {
                    tok: Tok::Eof,
                    line,
                    column,
                });
                return Ok(tokens);
            };
            let tok = if c.is_ascii_digit() {
                self.lex_number()?
            } else if c.is_ascii_uppercase() || c == '_' {
                self.lex_variable()
            } else if c.is_ascii_lowercase() {
                self.lex_plain_atom()
            } else if c == '\'' {
                self.lex_quoted_atom()?
            } else if "()[]{},|".contains(c) {
                self.bump();
                // '|' doubles as the list-tail separator and (rarely) an
                // operator; we always emit it as punctuation.
                Tok::Punct(c)
            } else if c == '!' {
                self.bump();
                Tok::Atom("!".to_owned())
            } else if c == ';' {
                self.bump();
                Tok::Atom(";".to_owned())
            } else if SYMBOL_CHARS.contains(c) {
                self.lex_symbolic_atom()
            } else {
                return Err(self.error(format!("unexpected character {c:?}")));
            };
            tokens.push(Token { tok, line, column });
        }
    }

    fn lex_number(&mut self) -> Result<Tok, ParseError> {
        let start = self.pos;
        while matches!(self.peek_char(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        // 0'c character code notation.
        if self.pos - start == 1 && self.src[start] == b'0' && self.peek_char() == Some('\'') {
            self.bump();
            let c = self
                .bump()
                .ok_or_else(|| self.error("unterminated character code"))?;
            return Ok(Tok::Int(c as i64));
        }
        let mut is_float = false;
        if self.peek_char() == Some('.')
            && matches!(self.peek_char_at(1), Some(c) if c.is_ascii_digit())
        {
            is_float = true;
            self.bump();
            while matches!(self.peek_char(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek_char(), Some('e' | 'E'))
            && (matches!(self.peek_char_at(1), Some(c) if c.is_ascii_digit())
                || (matches!(self.peek_char_at(1), Some('+' | '-'))
                    && matches!(self.peek_char_at(2), Some(c) if c.is_ascii_digit())))
        {
            is_float = true;
            self.bump();
            if matches!(self.peek_char(), Some('+' | '-')) {
                self.bump();
            }
            while matches!(self.peek_char(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|e| self.error(format!("bad float literal {text:?}: {e}")))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|e| self.error(format!("bad integer literal {text:?}: {e}")))
        }
    }

    fn lex_variable(&mut self) -> Tok {
        let start = self.pos;
        while matches!(self.peek_char(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
        Tok::Var(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn lex_plain_atom(&mut self) -> Tok {
        let start = self.pos;
        while matches!(self.peek_char(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            self.bump();
        }
        Tok::Atom(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn lex_quoted_atom(&mut self) -> Result<Tok, ParseError> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    if self.peek_char() == Some('\'') {
                        self.bump();
                        text.push('\'');
                    } else {
                        return Ok(Tok::Atom(text));
                    }
                }
                Some('\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    let replacement = match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '\\' => '\\',
                        '\'' => '\'',
                        other => other,
                    };
                    text.push(replacement);
                }
                Some(c) => text.push(c),
                None => return Err(self.error("unterminated quoted atom")),
            }
        }
    }

    fn lex_symbolic_atom(&mut self) -> Tok {
        let start = self.pos;
        while matches!(self.peek_char(), Some(c) if SYMBOL_CHARS.contains(c)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // A solitary '.' (not part of a longer symbolic atom) terminates a clause.
        if text == "." {
            Tok::End
        } else {
            Tok::Atom(text)
        }
    }
}

/// Operator fixity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fixity {
    Xfx,
    Xfy,
    Yfx,
    Fy,
    Fx,
}

fn infix_op(name: &str) -> Option<(u32, Fixity)> {
    let entry = match name {
        ":-" | "-->" => (1200, Fixity::Xfx),
        ";" => (1100, Fixity::Xfy),
        "->" => (1050, Fixity::Xfy),
        "&" => (950, Fixity::Xfy),
        "," => (1000, Fixity::Xfy),
        "=" | "\\=" | "==" | "\\==" | "is" | "=.." | "<" | ">" | "=<" | ">=" | "=:=" | "=\\="
        | "@<" | "@>" | "@=<" | "@>=" => (700, Fixity::Xfx),
        "+" | "-" | "/\\" | "\\/" | "xor" => (500, Fixity::Yfx),
        "*" | "/" | "//" | "mod" | "rem" | "div" | "<<" | ">>" => (400, Fixity::Yfx),
        "**" => (200, Fixity::Xfx),
        "^" => (200, Fixity::Xfy),
        _ => return None,
    };
    Some(entry)
}

fn prefix_op(name: &str) -> Option<(u32, Fixity)> {
    let entry = match name {
        ":-" | "?-" => (1200, Fixity::Fx),
        // Directive keywords behave as low-priority prefix operators so that
        // `:- mode nrev(+, -).` parses as `mode(nrev(+, -))`.
        "mode" | "measure" | "parallel" | "sequential" | "entry" | "dynamic" | "discontiguous"
        | "multifile" | "module" | "use_module" | "public" => (1150, Fixity::Fx),
        "\\+" => (900, Fixity::Fy),
        "-" | "+" | "\\" => (200, Fixity::Fy),
        _ => return None,
    };
    Some(entry)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    vars: HashMap<String, usize>,
    var_names: Vec<Symbol>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            vars: HashMap::new(),
            var_names: Vec::new(),
        }
    }

    fn reset_clause_state(&mut self) {
        self.vars.clear();
        self.var_names.clear();
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_tok(&self) -> &Tok {
        &self.peek().tok
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            message: message.into(),
            line: t.line,
            column: t.column,
        }
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_tok(), Tok::Eof)
    }

    fn var_id(&mut self, name: &str) -> usize {
        if name == "_" {
            let id = self.var_names.len();
            self.var_names.push(Symbol::intern("_"));
            return id;
        }
        if let Some(&id) = self.vars.get(name) {
            return id;
        }
        let id = self.var_names.len();
        self.vars.insert(name.to_owned(), id);
        self.var_names.push(Symbol::intern(name));
        id
    }

    /// Parses one term with priority at most `max_prec`.
    fn parse_expr(&mut self, max_prec: u32) -> Result<Term, ParseError> {
        let mut left = self.parse_primary(max_prec)?;
        loop {
            // The comma punctuation acts as the 1000-priority infix ','.
            let (op_name, prec, fixity) = match self.peek_tok() {
                Tok::Punct(',') if max_prec >= 1000 => (",".to_owned(), 1000, Fixity::Xfy),
                Tok::Punct('|') if max_prec >= 1100 => (";".to_owned(), 1100, Fixity::Xfy),
                Tok::Atom(name) => match infix_op(name) {
                    Some((prec, fixity)) if prec <= max_prec => (name.clone(), prec, fixity),
                    _ => break,
                },
                _ => break,
            };
            self.bump();
            let right_max = match fixity {
                Fixity::Xfx | Fixity::Yfx => prec - 1,
                Fixity::Xfy => prec,
                Fixity::Fy | Fixity::Fx => unreachable!("prefix fixity in infix position"),
            };
            let right = self.parse_expr(right_max)?;
            left = Term::compound(&op_name, vec![left, right]);
            if fixity == Fixity::Xfx {
                // xfx operators do not chain at the same priority.
                // (Continuing the loop with prec-1 left operand is handled by
                // the next iteration's precedence check.)
            }
        }
        Ok(left)
    }

    fn parse_primary(&mut self, max_prec: u32) -> Result<Term, ParseError> {
        let token = self.bump();
        match token.tok {
            Tok::Int(i) => Ok(Term::Int(i)),
            Tok::Float(x) => Ok(Term::float(x)),
            Tok::Var(name) => Ok(Term::Var(self.var_id(&name))),
            Tok::Punct('(') => {
                let t = self.parse_expr(1200)?;
                self.expect_punct(')')?;
                Ok(t)
            }
            Tok::Punct('[') => self.parse_list(),
            Tok::Punct('{') => {
                if matches!(self.peek_tok(), Tok::Punct('}')) {
                    self.bump();
                    return Ok(Term::atom("{}"));
                }
                let t = self.parse_expr(1200)?;
                self.expect_punct('}')?;
                Ok(Term::compound("{}", vec![t]))
            }
            Tok::Atom(name) => {
                // Compound term: atom immediately followed by '('.
                if matches!(self.peek_tok(), Tok::Punct('(')) {
                    self.bump();
                    let args = self.parse_arglist()?;
                    self.expect_punct(')')?;
                    return Ok(Term::compound(&name, args));
                }
                // Negative numeric literal.
                if name == "-" {
                    if let Tok::Int(i) = *self.peek_tok() {
                        self.bump();
                        return Ok(Term::Int(-i));
                    }
                    if let Tok::Float(x) = *self.peek_tok() {
                        self.bump();
                        return Ok(Term::float(-x));
                    }
                }
                // Prefix operator application.
                if let Some((prec, fixity)) = prefix_op(&name) {
                    if prec <= max_prec && self.starts_term() {
                        let arg_max = match fixity {
                            Fixity::Fy => prec,
                            Fixity::Fx => prec - 1,
                            _ => unreachable!(),
                        };
                        let arg = self.parse_expr(arg_max)?;
                        return Ok(Term::compound(&name, vec![arg]));
                    }
                }
                Ok(Term::atom(&name))
            }
            Tok::End => Err(ParseError {
                message: "unexpected end of clause".into(),
                line: token.line,
                column: token.column,
            }),
            Tok::Eof => Err(ParseError {
                message: "unexpected end of input".into(),
                line: token.line,
                column: token.column,
            }),
            Tok::Punct(c) => Err(ParseError {
                message: format!("unexpected {c:?}"),
                line: token.line,
                column: token.column,
            }),
        }
    }

    /// Can the upcoming token begin a term? (Used to decide whether a prefix
    /// operator is being applied or stands alone as an atom.)
    fn starts_term(&self) -> bool {
        match self.peek_tok() {
            Tok::Int(_) | Tok::Float(_) | Tok::Var(_) => true,
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => true,
            Tok::Atom(name) => {
                // An infix operator cannot start a term (e.g. `- , foo`).
                infix_op(name).is_none() || prefix_op(name).is_some()
            }
            _ => false,
        }
    }

    fn parse_arglist(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut args = vec![self.parse_expr(999)?];
        while matches!(self.peek_tok(), Tok::Punct(',')) {
            self.bump();
            args.push(self.parse_expr(999)?);
        }
        Ok(args)
    }

    fn parse_list(&mut self) -> Result<Term, ParseError> {
        if matches!(self.peek_tok(), Tok::Punct(']')) {
            self.bump();
            return Ok(Term::nil());
        }
        let mut items = vec![self.parse_expr(999)?];
        let mut tail = Term::nil();
        loop {
            match self.peek_tok() {
                Tok::Punct(',') => {
                    self.bump();
                    items.push(self.parse_expr(999)?);
                }
                Tok::Punct('|') => {
                    self.bump();
                    tail = self.parse_expr(999)?;
                    break;
                }
                _ => break,
            }
        }
        self.expect_punct(']')?;
        Ok(Term::list_with_tail(items, tail))
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        if matches!(self.peek_tok(), Tok::Punct(p) if *p == c) {
            self.bump();
            Ok(())
        } else {
            Err(self.error_here(format!("expected {c:?}, found {:?}", self.peek_tok())))
        }
    }

    fn expect_end(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek_tok(), Tok::End) {
            self.bump();
            Ok(())
        } else {
            Err(self.error_here(format!("expected '.', found {:?}", self.peek_tok())))
        }
    }

    /// Parses a full clause-level term followed by `.`; returns the term and
    /// its variable-name table.
    fn parse_clause_term(&mut self) -> Result<(Term, Vec<Symbol>), ParseError> {
        self.reset_clause_state();
        let term = self.parse_expr(1200)?;
        self.expect_end()?;
        Ok((term, std::mem::take(&mut self.var_names)))
    }
}

/// Parses a single Prolog term (without the terminating `.`).
///
/// Returns the term and the names of its variables ([`crate::VarId`] `i` has
/// name `names[i]`).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
///
/// # Example
///
/// ```
/// use granlog_ir::parser::parse_term;
/// let (t, names) = parse_term("f(X, [1,2|T])").unwrap();
/// assert_eq!(names.len(), 2);
/// assert_eq!(t.to_string(), "f(_0,[1,2|_1])");
/// ```
pub fn parse_term(src: &str) -> Result<(Term, Vec<Symbol>), ParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut parser = Parser::new(tokens);
    let term = parser.parse_expr(1200)?;
    if !parser.at_eof() && !matches!(parser.peek_tok(), Tok::End) {
        return Err(parser.error_here(format!("trailing input: {:?}", parser.peek_tok())));
    }
    Ok((term, parser.var_names))
}

/// Parses a Prolog program: a sequence of clauses and directives.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// # Example
///
/// ```
/// use granlog_ir::parser::parse_program;
/// let p = parse_program(":- mode fib(+, -). fib(0, 0). fib(1, 1).").unwrap();
/// assert_eq!(p.len(), 2);
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut parser = Parser::new(tokens);
    let mut program = Program::new();
    while !parser.at_eof() {
        let (term, var_names) = parser.parse_clause_term()?;
        match term {
            // Directive `:- D.`
            Term::Struct(neck, args) if neck.as_str() == ":-" && args.len() == 1 => {
                let directive = interpret_directive(&args[0]);
                program.add_directive(directive);
            }
            // Rule `H :- B.`
            Term::Struct(neck, mut args) if neck.as_str() == ":-" && args.len() == 2 => {
                let body = args.pop().expect("arity checked");
                let head = args.pop().expect("arity checked");
                if !head.is_callable() {
                    return Err(ParseError {
                        message: format!("clause head must be callable, found {head}"),
                        line: 0,
                        column: 0,
                    });
                }
                program.add_clause(Clause::new(head, body, var_names));
            }
            // Fact.
            head => {
                if !head.is_callable() {
                    return Err(ParseError {
                        message: format!("clause head must be callable, found {head}"),
                        line: 0,
                        column: 0,
                    });
                }
                program.add_clause(Clause::fact(head, var_names));
            }
        }
    }
    Ok(program)
}

/// Interprets a directive body term into a [`Directive`].
fn interpret_directive(body: &Term) -> Directive {
    let Some((name, _arity)) = body.functor() else {
        return Directive::Other(body.clone());
    };
    match name.as_str() {
        "mode" if body.args().len() == 1 => {
            // :- mode p(+, -).  (equivalently :- mode(p(+, -)).)
            parse_mode_spec(&body.args()[0])
                .map(|(pred, modes)| Directive::Mode(pred, modes))
                .unwrap_or_else(|| Directive::Other(body.clone()))
        }
        "measure" if body.args().len() == 1 => {
            let spec = &body.args()[0];
            match spec.functor() {
                Some((pred_name, arity)) if arity > 0 => {
                    let measures: Vec<Symbol> = spec
                        .args()
                        .iter()
                        .map(|a| match a.functor() {
                            Some((m, 0)) => m,
                            _ => Symbol::intern("unknown"),
                        })
                        .collect();
                    Directive::Measure(PredId::new(pred_name, arity), measures)
                }
                _ => Directive::Other(body.clone()),
            }
        }
        "parallel" | "sequential" if body.args().len() == 1 => {
            match parse_pred_indicator(&body.args()[0]) {
                Some(pred) if name.as_str() == "parallel" => Directive::Parallel(pred),
                Some(pred) => Directive::Sequential(pred),
                None => Directive::Other(body.clone()),
            }
        }
        "entry" if body.args().len() == 1 => parse_mode_spec(&body.args()[0])
            .map(|(pred, modes)| Directive::Entry(pred, modes))
            .unwrap_or_else(|| Directive::Other(body.clone())),
        _ => Directive::Other(body.clone()),
    }
}

/// Parses `p(+,-)`-style mode specs.
fn parse_mode_spec(spec: &Term) -> Option<(PredId, Vec<ArgMode>)> {
    let (name, arity) = spec.functor()?;
    if arity == 0 {
        return None;
    }
    let modes: Option<Vec<ArgMode>> = spec
        .args()
        .iter()
        .map(|a| match a.functor() {
            Some((ind, 0)) => ArgMode::from_indicator(ind.as_str()),
            _ => None,
        })
        .collect();
    Some((PredId::new(name, arity), modes?))
}

/// Parses `p/2`-style predicate indicators (also accepts a bare callable term,
/// using its own functor/arity).
fn parse_pred_indicator(term: &Term) -> Option<PredId> {
    if let Term::Struct(slash, args) = term {
        if slash.as_str() == "/" && args.len() == 2 {
            if let (Some((name, 0)), Term::Int(arity)) = (args[0].functor(), &args[1]) {
                return Some(PredId::new(name, usize::try_from(*arity).ok()?));
            }
        }
    }
    PredId::of_term(term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::ArgMode;

    #[test]
    fn parse_simple_fact() {
        let p = parse_program("likes(mary, wine).").unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.clauses()[0].is_fact());
        assert_eq!(p.clauses()[0].head.to_string(), "likes(mary,wine)");
    }

    #[test]
    fn parse_rule_with_conjunction() {
        let p = parse_program("happy(X) :- rich(X), healthy(X).").unwrap();
        let c = &p.clauses()[0];
        assert_eq!(c.body_literals().len(), 2);
        assert_eq!(c.var_names.len(), 1);
        assert_eq!(c.var_names[0].as_str(), "X");
    }

    #[test]
    fn parse_lists() {
        let (t, _) = parse_term("[1, 2, 3]").unwrap();
        assert_eq!(t.list_length(), Some(3));
        let (t, names) = parse_term("[H | T]").unwrap();
        assert!(t.is_cons());
        assert_eq!(names.len(), 2);
        let (t, _) = parse_term("[]").unwrap();
        assert!(t.is_nil());
        let (t, _) = parse_term("[a, b | [c]]").unwrap();
        assert_eq!(t.list_length(), Some(3));
    }

    #[test]
    fn parse_arithmetic_precedence() {
        let (t, _) = parse_term("1 + 2 * 3").unwrap();
        assert_eq!(t.to_string(), "(1+(2*3))");
        let (t, _) = parse_term("1 * 2 + 3").unwrap();
        assert_eq!(t.to_string(), "((1*2)+3)");
        let (t, _) = parse_term("1 - 2 - 3").unwrap();
        // yfx: left associative
        assert_eq!(t.to_string(), "((1-2)-3)");
        let (t, _) = parse_term("2 ** 3").unwrap();
        assert_eq!(t.functor().unwrap().0.as_str(), "**");
    }

    #[test]
    fn parse_is_and_comparison() {
        let p = parse_program("p(X, Y) :- Y is X - 1, X > 0.").unwrap();
        let lits = p.clauses()[0].body_literals();
        assert_eq!(lits.len(), 2);
        assert_eq!(lits[0].functor().unwrap().0.as_str(), "is");
        assert_eq!(lits[1].functor().unwrap().0.as_str(), ">");
    }

    #[test]
    fn parse_negative_numbers() {
        let (t, _) = parse_term("-5").unwrap();
        assert_eq!(t, Term::int(-5));
        let (t, _) = parse_term("f(-5, -1.5)").unwrap();
        assert_eq!(t.args()[0], Term::int(-5));
        assert_eq!(t.args()[1], Term::float(-1.5));
        // Unary minus applied to a variable stays symbolic.
        let (t, _) = parse_term("-X").unwrap();
        assert_eq!(t.functor().unwrap().0.as_str(), "-");
    }

    #[test]
    fn parse_floats_and_char_codes() {
        let (t, _) = parse_term("3.25").unwrap();
        assert_eq!(t, Term::float(3.25));
        let (t, _) = parse_term("1.0e3").unwrap();
        assert_eq!(t, Term::float(1000.0));
        let (t, _) = parse_term("0'a").unwrap();
        assert_eq!(t, Term::int('a' as i64));
    }

    #[test]
    fn parse_quoted_atoms() {
        let (t, _) = parse_term("'hello world'").unwrap();
        assert_eq!(t, Term::atom("hello world"));
        let (t, _) = parse_term("'it''s'").unwrap();
        assert_eq!(t, Term::atom("it's"));
        let (t, _) = parse_term("'line\\nbreak'").unwrap();
        assert_eq!(t, Term::atom("line\nbreak"));
    }

    #[test]
    fn parse_if_then_else() {
        let p = parse_program("p(X) :- ( X > 1 -> q(X) ; r(X) ).").unwrap();
        let body = &p.clauses()[0].body;
        assert_eq!(body.functor().unwrap().0.as_str(), ";");
        assert_eq!(body.args()[0].functor().unwrap().0.as_str(), "->");
    }

    #[test]
    fn parse_parallel_conjunction() {
        let p = parse_program("qs(L, S) :- part(L, A, B), qs(A, SA) & qs(B, SB), app(SA, SB, S).")
            .unwrap();
        let lits = p.clauses()[0].body_literals();
        assert_eq!(lits.len(), 4);
    }

    #[test]
    fn parse_negation() {
        let p = parse_program("p(X) :- \\+ q(X).").unwrap();
        let body = &p.clauses()[0].body;
        assert_eq!(body.functor().unwrap(), (Symbol::intern("\\+"), 1));
    }

    #[test]
    fn parse_cut_and_true() {
        let p = parse_program("p(X) :- q(X), !, r(X). t.").unwrap();
        let lits = p.clauses()[0].body_literals();
        assert_eq!(lits[1], &Term::atom("!"));
        assert!(p.clauses()[1].is_fact());
    }

    #[test]
    fn parse_mode_directive_plus_minus() {
        let p = parse_program(":- mode append(+, +, -). append([], L, L).").unwrap();
        let m = p.mode_of(PredId::parse("append", 3)).unwrap();
        assert_eq!(m.modes, vec![ArgMode::In, ArgMode::In, ArgMode::Out]);
    }

    #[test]
    fn parse_mode_directive_io_atoms() {
        let p = parse_program(":- mode nrev(i, o). nrev([], []).").unwrap();
        let m = p.mode_of(PredId::parse("nrev", 2)).unwrap();
        assert_eq!(m.modes, vec![ArgMode::In, ArgMode::Out]);
    }

    #[test]
    fn parse_mode_directive_wrapped() {
        let p = parse_program(":- mode(fib(+, -)). fib(0, 0).").unwrap();
        assert!(p.mode_of(PredId::parse("fib", 2)).is_some());
    }

    #[test]
    fn parse_measure_directive() {
        let p =
            parse_program(":- measure append(length, length, length). append([], L, L).").unwrap();
        let ms = p.measure_of(PredId::parse("append", 3)).unwrap();
        assert_eq!(ms.len(), 3);
        assert_eq!(ms[0].as_str(), "length");
    }

    #[test]
    fn parse_parallel_and_sequential_directives() {
        let p = parse_program(":- parallel qs/2.\n:- sequential part/4.\nqs([], []).").unwrap();
        assert_eq!(p.parallel_marking(PredId::parse("qs", 2)), Some(true));
        assert_eq!(p.parallel_marking(PredId::parse("part", 4)), Some(false));
    }

    #[test]
    fn parse_entry_directive() {
        let p = parse_program(":- entry main(+). main(X) :- write(X).").unwrap();
        assert_eq!(p.entries().len(), 1);
        assert_eq!(p.entries()[0].0, PredId::parse("main", 1));
    }

    #[test]
    fn unknown_directives_are_preserved() {
        let p = parse_program(":- dynamic foo/1. foo(1).").unwrap();
        assert!(matches!(p.directives()[0], Directive::Other(_)));
    }

    #[test]
    fn comments_are_skipped() {
        let src = "% a line comment\np(1). /* block\ncomment */ p(2). % trailing";
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn variables_are_scoped_per_clause() {
        let p = parse_program("p(X) :- q(X). r(X) :- s(X).").unwrap();
        // Each clause numbers its own X from zero.
        assert_eq!(p.clauses()[0].var_names.len(), 1);
        assert_eq!(p.clauses()[1].var_names.len(), 1);
        assert_eq!(p.clauses()[0].head.args()[0], Term::var(0));
        assert_eq!(p.clauses()[1].head.args()[0], Term::var(0));
    }

    #[test]
    fn anonymous_variables_are_distinct() {
        let p = parse_program("p(_, _, X, X).").unwrap();
        let head = &p.clauses()[0].head;
        assert_ne!(head.args()[0], head.args()[1]);
        assert_eq!(head.args()[2], head.args()[3]);
    }

    #[test]
    fn error_on_unterminated_clause() {
        let err = parse_program("p(a)").unwrap_err();
        assert!(err.to_string().contains("expected '.'"), "{err}");
    }

    #[test]
    fn error_on_unbalanced_paren() {
        assert!(parse_program("p(a.").is_err());
        assert!(parse_program("p(a)) .").is_err());
    }

    #[test]
    fn error_on_unterminated_atom_and_comment() {
        assert!(parse_program("p('abc).").is_err());
        assert!(parse_program("/* never closed").is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("p(a).\nq(b\n).x").unwrap_err();
        assert!(err.line >= 2, "line was {}", err.line);
    }

    #[test]
    fn nrev_appendix_program_parses() {
        let src = r#"
            :- mode nrev(+, -).
            :- mode append(+, +, -).
            nrev([], []).
            nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).
            append([], L, L).
            append([H|L1], L2, [H|L3]) :- append(L1, L2, L3).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.predicates().count(), 2);
        let rec = &p.clauses_of(PredId::parse("nrev", 2))[1];
        assert_eq!(rec.body_literals().len(), 2);
        assert_eq!(rec.var_names.len(), 4); // H, L, R, R1
    }

    #[test]
    fn fib_program_parses() {
        let src = r#"
            fib(0, 0).
            fib(1, 1).
            fib(M, N) :- M > 1, M1 is M - 1, M2 is M - 2,
                         fib(M1, N1), fib(M2, N2), N is N1 + N2.
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.clauses()[2].body_literals().len(), 6);
    }

    #[test]
    fn operators_as_atoms_in_arglists() {
        let (t, _) = parse_term("f(+, -)").unwrap();
        assert_eq!(t.args()[0], Term::atom("+"));
        assert_eq!(t.args()[1], Term::atom("-"));
    }

    #[test]
    fn deep_nesting_parses() {
        let mut src = String::from("p(");
        for _ in 0..200 {
            src.push_str("f(");
        }
        src.push('a');
        for _ in 0..200 {
            src.push(')');
        }
        src.push_str(").");
        let p = parse_program(&src).unwrap();
        assert_eq!(p.clauses()[0].head.args()[0].term_depth(), 200);
    }

    #[test]
    fn pred_indicator_parsing() {
        let (t, _) = parse_term("foo/3").unwrap();
        assert_eq!(parse_pred_indicator(&t), Some(PredId::parse("foo", 3)));
        let (t, _) = parse_term("foo(a, b)").unwrap();
        assert_eq!(parse_pred_indicator(&t), Some(PredId::parse("foo", 2)));
    }

    #[test]
    fn semicolon_binds_looser_than_comma() {
        let (t, _) = parse_term("a, b ; c").unwrap();
        assert_eq!(t.functor().unwrap().0.as_str(), ";");
        let (t, _) = parse_term("a ; b, c").unwrap();
        assert_eq!(t.functor().unwrap().0.as_str(), ";");
        assert_eq!(t.args()[1].functor().unwrap().0.as_str(), ",");
    }
}

//! Human-readable rendering of terms and clauses.
//!
//! The printer aims at readability rather than strict re-parsability: lists
//! print in bracket notation, well-known binary operators print infix, and
//! variables print either by their source name (when a name table is
//! supplied) or as `_N`.

use crate::symbol::Symbol;
use crate::term::Term;
use std::fmt;

/// Operators rendered infix by the pretty printer, with their display glyph.
fn infix_glyph(name: &str, arity: usize) -> Option<&'static str> {
    if arity != 2 {
        return None;
    }
    let glyph = match name {
        "," => ",",
        ";" => ";",
        "->" => "->",
        "&" => "&",
        ":-" => ":-",
        "is" => " is ",
        "=" => "=",
        "\\=" => "\\=",
        "==" => "==",
        "\\==" => "\\==",
        "<" => "<",
        ">" => ">",
        "=<" => "=<",
        ">=" => ">=",
        "=:=" => "=:=",
        "=\\=" => "=\\=",
        "+" => "+",
        "-" => "-",
        "*" => "*",
        "/" => "/",
        "//" => "//",
        "mod" => " mod ",
        _ => return None,
    };
    Some(glyph)
}

/// Formats a single term.
///
/// `var_names`, when provided, maps [`crate::term::VarId`]s to their source
/// names; variables outside the table (or when the table is absent) render as
/// `_N`.
pub fn fmt_term(
    term: &Term,
    var_names: Option<&[Symbol]>,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    match term {
        Term::Var(v) => match var_names.and_then(|names| names.get(*v)) {
            Some(name) => write!(f, "{name}"),
            None => write!(f, "_{v}"),
        },
        Term::Int(i) => write!(f, "{i}"),
        Term::Float(x) => write!(f, "{}", x.0),
        Term::Atom(a) => write!(f, "{}", atom_text(a.as_str())),
        Term::Struct(_, _) if term.is_cons() => fmt_list(term, var_names, f),
        Term::Struct(name, args) => {
            if let Some(glyph) = infix_glyph(name.as_str(), args.len()) {
                write!(f, "(")?;
                fmt_term(&args[0], var_names, f)?;
                write!(f, "{glyph}")?;
                fmt_term(&args[1], var_names, f)?;
                write!(f, ")")
            } else {
                write!(f, "{}(", atom_text(name.as_str()))?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    fmt_term(arg, var_names, f)?;
                }
                write!(f, ")")
            }
        }
    }
}

fn fmt_list(term: &Term, var_names: Option<&[Symbol]>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "[")?;
    let mut cur = term;
    let mut first = true;
    loop {
        match cur {
            Term::Struct(s, args) if *s == crate::symbol::well_known::cons() && args.len() == 2 => {
                if !first {
                    write!(f, ",")?;
                }
                fmt_term(&args[0], var_names, f)?;
                first = false;
                cur = &args[1];
            }
            t if t.is_nil() => break,
            tail => {
                write!(f, "|")?;
                fmt_term(tail, var_names, f)?;
                break;
            }
        }
    }
    write!(f, "]")
}

/// Quotes an atom's text if it would not read back as an unquoted atom.
fn atom_text(s: &str) -> String {
    let plain_alpha = s
        .chars()
        .next()
        .map(|c| c.is_ascii_lowercase())
        .unwrap_or(false)
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    let symbolic = !s.is_empty() && s.chars().all(|c| "+-*/\\^<>=~:.?@#&$".contains(c));
    let special = matches!(s, "[]" | "!" | ";" | "{}" | ",");
    if plain_alpha || symbolic || special {
        s.to_owned()
    } else {
        format!("'{}'", s.replace('\'', "\\'"))
    }
}

/// A display adapter pairing a term with a variable-name table.
///
/// # Example
///
/// ```
/// use granlog_ir::{parser::parse_program, pretty::TermWithNames};
/// let p = parse_program("p(X) :- q(X).").unwrap();
/// let clause = &p.clauses()[0];
/// let shown = TermWithNames::new(&clause.head, &clause.var_names).to_string();
/// assert_eq!(shown, "p(X)");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TermWithNames<'a> {
    term: &'a Term,
    names: &'a [Symbol],
}

impl<'a> TermWithNames<'a> {
    /// Pairs `term` with the variable-name table `names`.
    pub fn new(term: &'a Term, names: &'a [Symbol]) -> Self {
        TermWithNames { term, names }
    }
}

impl fmt::Display for TermWithNames<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_term(self.term, Some(self.names), f)
    }
}

#[cfg(test)]
mod tests {
    use crate::term::Term;

    #[test]
    fn quoting_of_atoms() {
        assert_eq!(Term::atom("foo").to_string(), "foo");
        assert_eq!(Term::atom("Foo bar").to_string(), "'Foo bar'");
        assert_eq!(Term::atom("[]").to_string(), "[]");
        assert_eq!(Term::atom("+").to_string(), "+");
        assert_eq!(Term::atom("hello world").to_string(), "'hello world'");
    }

    #[test]
    fn infix_operators_render_infix() {
        let t = Term::compound(">", vec![Term::var(0), Term::var(1)]);
        assert_eq!(t.to_string(), "(_0>_1)");
        let t = Term::compound(
            "is",
            vec![
                Term::var(0),
                Term::compound("+", vec![Term::int(1), Term::int(2)]),
            ],
        );
        assert_eq!(t.to_string(), "(_0 is (1+2))");
    }

    #[test]
    fn improper_lists_show_tail() {
        let t = Term::list_with_tail(vec![Term::int(1), Term::int(2)], Term::var(3));
        assert_eq!(t.to_string(), "[1,2|_3]");
    }

    #[test]
    fn nested_lists() {
        let t = Term::list(vec![Term::list(vec![Term::int(1)]), Term::nil()]);
        assert_eq!(t.to_string(), "[[1],[]]");
    }

    #[test]
    fn conjunction_renders() {
        let t = Term::compound(
            ",",
            vec![
                Term::atom("a"),
                Term::compound(",", vec![Term::atom("b"), Term::atom("c")]),
            ],
        );
        assert_eq!(t.to_string(), "(a,(b,c))");
    }
}

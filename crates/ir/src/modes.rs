//! Argument modes (input/output) and a simple mode-propagation inference.
//!
//! The paper assumes the input/output character of argument positions is
//! either inferred by a prior dataflow analysis or supplied by the user
//! (Section 3). We accept user declarations (`:- mode p(+, -).`) and provide a
//! lightweight groundness-propagation inference that derives modes for callees
//! reachable from declared predicates under the usual left-to-right execution
//! order. Predicates that remain unreached fall back to "all input", the
//! conservative choice for an upper-bound cost analysis.

use crate::program::{PredId, Program};
use crate::symbol::Symbol;

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// The mode of a single argument position.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum ArgMode {
    /// The argument is bound (an input) at call time.
    In,
    /// The argument is free (an output) at call time and bound on success.
    Out,
}

impl ArgMode {
    /// Parses a mode indicator: `+`/`i`/`in`/`ground` are input, `-`/`o`/`out`
    /// are output, `?` is treated as input (conservative).
    pub fn from_indicator(s: &str) -> Option<ArgMode> {
        match s {
            "+" | "i" | "in" | "ground" | "?" => Some(ArgMode::In),
            "-" | "o" | "out" | "free" => Some(ArgMode::Out),
            _ => None,
        }
    }

    /// Returns `true` for input positions.
    pub fn is_input(self) -> bool {
        matches!(self, ArgMode::In)
    }

    /// Returns `true` for output positions.
    pub fn is_output(self) -> bool {
        matches!(self, ArgMode::Out)
    }
}

impl fmt::Display for ArgMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgMode::In => write!(f, "+"),
            ArgMode::Out => write!(f, "-"),
        }
    }
}

/// The declared or inferred modes of a predicate's argument positions.
///
/// # Example
///
/// ```
/// use granlog_ir::{ArgMode, ModeDecl, PredId};
/// let decl = ModeDecl::new(PredId::parse("append", 3),
///                          vec![ArgMode::In, ArgMode::In, ArgMode::Out]);
/// assert_eq!(decl.input_positions(), vec![0, 1]);
/// assert_eq!(decl.output_positions(), vec![2]);
/// assert_eq!(decl.to_string(), "append(+,+,-)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ModeDecl {
    /// The predicate the declaration applies to.
    pub pred: PredId,
    /// One mode per argument position.
    pub modes: Vec<ArgMode>,
}

impl ModeDecl {
    /// Creates a mode declaration.
    ///
    /// # Panics
    ///
    /// Panics if the number of modes differs from the predicate's arity.
    pub fn new(pred: PredId, modes: Vec<ArgMode>) -> Self {
        assert_eq!(
            pred.arity,
            modes.len(),
            "mode declaration for {pred} must have {} modes",
            pred.arity
        );
        ModeDecl { pred, modes }
    }

    /// Declares every argument position as input.
    pub fn all_input(pred: PredId) -> Self {
        ModeDecl {
            pred,
            modes: vec![ArgMode::In; pred.arity],
        }
    }

    /// Zero-based indices of the input argument positions.
    pub fn input_positions(&self) -> Vec<usize> {
        self.modes
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.is_input().then_some(i))
            .collect()
    }

    /// Zero-based indices of the output argument positions.
    pub fn output_positions(&self) -> Vec<usize> {
        self.modes
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.is_output().then_some(i))
            .collect()
    }

    /// The mode of argument position `i` (zero-based).
    pub fn mode(&self, i: usize) -> ArgMode {
        self.modes[i]
    }
}

impl fmt::Display for ModeDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred.name)?;
        for (i, m) in self.modes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, ")")
    }
}

/// Builtin predicates whose modes are known a priori to the inference.
fn builtin_modes(pred: PredId) -> Option<Vec<ArgMode>> {
    let name = pred.name.as_str();
    let modes = match (name, pred.arity) {
        ("is", 2) => vec![ArgMode::Out, ArgMode::In],
        ("=", 2) => vec![ArgMode::Out, ArgMode::In],
        ("<", 2)
        | (">", 2)
        | ("=<", 2)
        | (">=", 2)
        | ("=:=", 2)
        | ("=\\=", 2)
        | ("==", 2)
        | ("\\==", 2)
        | ("@<", 2)
        | ("@>", 2)
        | ("@=<", 2)
        | ("@>=", 2) => {
            vec![ArgMode::In, ArgMode::In]
        }
        ("true", 0) | ("fail", 0) | ("!", 0) => vec![],
        ("functor", 3) => vec![ArgMode::In, ArgMode::Out, ArgMode::Out],
        ("arg", 3) => vec![ArgMode::In, ArgMode::In, ArgMode::Out],
        ("length", 2) => vec![ArgMode::In, ArgMode::Out],
        ("write", 1)
        | ("nl", 0)
        | ("atom", 1)
        | ("integer", 1)
        | ("var", 1)
        | ("nonvar", 1)
        | ("number", 1)
        | ("atomic", 1)
        | ("ground", 1) => vec![ArgMode::In; pred.arity],
        _ => return None,
    };
    Some(modes)
}

/// Infers modes for every predicate of `program`.
///
/// Declared modes are kept verbatim. Starting from predicates with declared
/// modes (and declared `:- entry` points), a groundness analysis is propagated
/// along the left-to-right execution order of clause bodies: variables
/// occurring in input head arguments are ground at clause entry; for each body
/// goal, an argument whose variables are all ground is an input, otherwise an
/// output, and after the goal succeeds all variables of the goal become
/// ground. The join over different call sites is "input only if input at every
/// site" (i.e. output wins), which is the conservative direction for size
/// analysis. Predicates never reached default to all-input.
pub fn infer_modes(program: &Program) -> BTreeMap<PredId, ModeDecl> {
    let mut result: BTreeMap<PredId, ModeDecl> = program.modes().clone();
    let mut worklist: VecDeque<PredId> = result.keys().copied().collect();
    let mut visited: BTreeSet<PredId> = BTreeSet::new();

    while let Some(pred) = worklist.pop_front() {
        if !visited.insert(pred) {
            continue;
        }
        let Some(decl) = result.get(&pred).cloned() else {
            continue;
        };
        if !program.defines(pred) {
            continue;
        }
        for clause in program.clauses_of(pred) {
            let mut ground: BTreeSet<usize> = BTreeSet::new();
            for (pos, arg) in clause.head.args().iter().enumerate() {
                if decl.mode(pos).is_input() {
                    arg.collect_variables(&mut ground);
                }
            }
            for goal in clause.called_goals() {
                let Some(goal_pred) = PredId::of_term(goal) else {
                    continue;
                };
                let inferred: Vec<ArgMode> = goal
                    .args()
                    .iter()
                    .map(|arg| {
                        let vars = arg.variables();
                        if vars.iter().all(|v| ground.contains(v)) {
                            ArgMode::In
                        } else {
                            ArgMode::Out
                        }
                    })
                    .collect();
                // Builtins have fixed modes; user predicates join call patterns.
                if builtin_modes(goal_pred).is_none() && program.defines(goal_pred) {
                    let entry = result
                        .entry(goal_pred)
                        .or_insert_with(|| ModeDecl::new(goal_pred, inferred.clone()));
                    let mut changed = false;
                    for (slot, new_mode) in entry.modes.iter_mut().zip(&inferred) {
                        if slot.is_input() && new_mode.is_output() {
                            *slot = ArgMode::Out;
                            changed = true;
                        }
                    }
                    if changed {
                        visited.remove(&goal_pred);
                    }
                    worklist.push_back(goal_pred);
                }
                // After success, every variable of the goal is bound.
                for arg in goal.args() {
                    arg.collect_variables(&mut ground);
                }
            }
        }
    }

    // Fallback: anything still missing is all-input.
    for predicate in program.predicates() {
        result
            .entry(predicate.id)
            .or_insert_with(|| ModeDecl::all_input(predicate.id));
    }
    result
}

/// Returns the measure-name symbols declared for a predicate, if any, checking
/// that the arity matches.
pub fn declared_measures(program: &Program, pred: PredId) -> Option<Vec<Symbol>> {
    program.measure_of(pred).map(|m| m.to_vec())
}

/// Convenience: looks a term's predicate up in a mode table, falling back to
/// all-input.
pub fn mode_or_default<'a>(
    modes: &'a BTreeMap<PredId, ModeDecl>,
    pred: PredId,
) -> std::borrow::Cow<'a, ModeDecl> {
    match modes.get(&pred) {
        Some(m) => std::borrow::Cow::Borrowed(m),
        None => std::borrow::Cow::Owned(
            builtin_modes(pred)
                .map(|ms| ModeDecl { pred, modes: ms })
                .unwrap_or_else(|| ModeDecl::all_input(pred)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn indicator_parsing() {
        assert_eq!(ArgMode::from_indicator("+"), Some(ArgMode::In));
        assert_eq!(ArgMode::from_indicator("-"), Some(ArgMode::Out));
        assert_eq!(ArgMode::from_indicator("i"), Some(ArgMode::In));
        assert_eq!(ArgMode::from_indicator("o"), Some(ArgMode::Out));
        assert_eq!(ArgMode::from_indicator("?"), Some(ArgMode::In));
        assert_eq!(ArgMode::from_indicator("zzz"), None);
    }

    #[test]
    #[should_panic(expected = "must have")]
    fn mode_decl_arity_mismatch_panics() {
        ModeDecl::new(PredId::parse("p", 2), vec![ArgMode::In]);
    }

    #[test]
    fn positions() {
        let decl = ModeDecl::new(
            PredId::parse("f", 3),
            vec![ArgMode::In, ArgMode::Out, ArgMode::In],
        );
        assert_eq!(decl.input_positions(), vec![0, 2]);
        assert_eq!(decl.output_positions(), vec![1]);
        assert_eq!(decl.mode(1), ArgMode::Out);
    }

    #[test]
    fn declared_modes_are_kept() {
        let p = parse_program(":- mode nrev(+, -). nrev([], []).").unwrap();
        let modes = infer_modes(&p);
        let decl = &modes[&PredId::parse("nrev", 2)];
        assert_eq!(decl.modes, vec![ArgMode::In, ArgMode::Out]);
    }

    #[test]
    fn modes_propagate_to_callees() {
        let src = r#"
            :- mode nrev(+, -).
            nrev([], []).
            nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).
            append([], L, L).
            append([H|T], L, [H|R]) :- append(T, L, R).
        "#;
        let p = parse_program(src).unwrap();
        let modes = infer_modes(&p);
        let append = &modes[&PredId::parse("append", 3)];
        assert_eq!(append.modes, vec![ArgMode::In, ArgMode::In, ArgMode::Out]);
    }

    #[test]
    fn unreached_predicates_default_to_all_input() {
        let p = parse_program("orphan(a, b).").unwrap();
        let modes = infer_modes(&p);
        let decl = &modes[&PredId::parse("orphan", 2)];
        assert_eq!(decl.modes, vec![ArgMode::In, ArgMode::In]);
    }

    #[test]
    fn output_wins_when_call_patterns_conflict() {
        let src = r#"
            :- mode main(+).
            main(X) :- helper(X, Y), use(Y), helper(Z, X), use(Z).
            helper(A, A).
            use(_).
        "#;
        let p = parse_program(src).unwrap();
        let modes = infer_modes(&p);
        let helper = &modes[&PredId::parse("helper", 2)];
        // First call: helper(in, out); second call: helper(out, in); join = (out, out).
        assert_eq!(helper.modes, vec![ArgMode::Out, ArgMode::Out]);
    }

    #[test]
    fn builtin_modes_known() {
        assert_eq!(
            builtin_modes(PredId::parse("is", 2)),
            Some(vec![ArgMode::Out, ArgMode::In])
        );
        assert!(builtin_modes(PredId::parse("frobnicate", 7)).is_none());
    }

    #[test]
    fn mode_or_default_falls_back() {
        let map = BTreeMap::new();
        let d = mode_or_default(&map, PredId::parse(">", 2));
        assert_eq!(d.modes, vec![ArgMode::In, ArgMode::In]);
        let d = mode_or_default(&map, PredId::parse("mystery", 2));
        assert_eq!(d.modes, vec![ArgMode::In, ArgMode::In]);
    }

    #[test]
    fn display() {
        let decl = ModeDecl::new(PredId::parse("f", 2), vec![ArgMode::In, ArgMode::Out]);
        assert_eq!(decl.to_string(), "f(+,-)");
    }
}

//! The Prolog term algebra.
//!
//! [`Term`] is the central data type of the system: clause heads, clause
//! bodies, goals and runtime data are all terms. Variables are represented by
//! clause-local indices ([`VarId`]); the mapping from indices back to source
//! names lives in [`crate::Clause::var_names`].

use crate::symbol::{well_known, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// A clause-local variable identifier.
///
/// Variables are numbered from zero within each clause (or each parsed
/// top-level term). Execution engines rename them to globally fresh
/// identifiers when a clause is activated.
pub type VarId = usize;

/// A Prolog term.
///
/// Lists use the standard encoding: `[]` is [`Term::nil`] (the atom `[]`) and
/// `[H|T]` is the compound `'.'(H, T)`; the helpers [`Term::list`],
/// [`Term::cons`] and [`Term::as_list`] hide that encoding.
///
/// # Example
///
/// ```
/// use granlog_ir::Term;
/// let t = Term::list(vec![Term::int(1), Term::int(2), Term::int(3)]);
/// assert_eq!(t.list_length(), Some(3));
/// assert_eq!(t.to_string(), "[1,2,3]");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A logic variable, identified by a clause-local index.
    Var(VarId),
    /// An atom (constant), e.g. `foo`, `[]`, `'hello world'`.
    Atom(Symbol),
    /// An integer constant.
    Int(i64),
    /// A floating-point constant. Stored as ordered bits so terms can be
    /// hashed and totally ordered.
    Float(OrderedF64),
    /// A compound term `f(t1, ..., tn)` with `n >= 1`.
    Struct(Symbol, Vec<Term>),
}

/// An `f64` wrapper with total ordering and hashing by bit pattern.
///
/// Prolog floats inside terms need `Eq`/`Ord`/`Hash`; this wrapper provides
/// them with the usual caveat that `NaN` compares by bit pattern.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrderedF64(pub f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or_else(|| self.0.to_bits().cmp(&other.0.to_bits()))
    }
}

impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl From<f64> for OrderedF64 {
    fn from(v: f64) -> Self {
        OrderedF64(v)
    }
}

impl Term {
    /// Creates an atom term.
    pub fn atom(name: &str) -> Term {
        Term::Atom(Symbol::intern(name))
    }

    /// Creates an integer term.
    pub fn int(v: i64) -> Term {
        Term::Int(v)
    }

    /// Creates a float term.
    pub fn float(v: f64) -> Term {
        Term::Float(OrderedF64(v))
    }

    /// Creates a variable term.
    pub fn var(id: VarId) -> Term {
        Term::Var(id)
    }

    /// Creates a compound term `name(args...)`. If `args` is empty this
    /// degenerates to an atom, mirroring Prolog's `=..`.
    pub fn compound(name: &str, args: Vec<Term>) -> Term {
        if args.is_empty() {
            Term::atom(name)
        } else {
            Term::Struct(Symbol::intern(name), args)
        }
    }

    /// Creates a compound term from an already-interned functor symbol.
    pub fn structure(name: Symbol, args: Vec<Term>) -> Term {
        if args.is_empty() {
            Term::Atom(name)
        } else {
            Term::Struct(name, args)
        }
    }

    /// The empty list `[]`.
    pub fn nil() -> Term {
        Term::Atom(well_known::nil())
    }

    /// The list cell `[head | tail]`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::Struct(well_known::cons(), vec![head, tail])
    }

    /// Builds a proper list from the given elements.
    pub fn list<I: IntoIterator<Item = Term>>(items: I) -> Term {
        Self::list_with_tail(items, Term::nil())
    }

    /// Builds a (possibly improper) list `[e1, ..., en | tail]`.
    pub fn list_with_tail<I: IntoIterator<Item = Term>>(items: I, tail: Term) -> Term {
        let items: Vec<Term> = items.into_iter().collect();
        items
            .into_iter()
            .rev()
            .fold(tail, |acc, item| Term::cons(item, acc))
    }

    /// Returns `true` if this term is the atom `[]`.
    pub fn is_nil(&self) -> bool {
        matches!(self, Term::Atom(s) if *s == well_known::nil())
    }

    /// Returns `true` if this term is a `'.'/2` list cell.
    pub fn is_cons(&self) -> bool {
        matches!(self, Term::Struct(s, args) if *s == well_known::cons() && args.len() == 2)
    }

    /// Returns `true` for atoms, integers and floats.
    pub fn is_atomic(&self) -> bool {
        matches!(self, Term::Atom(_) | Term::Int(_) | Term::Float(_))
    }

    /// Returns `true` if the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Returns `true` if the term is callable (an atom or a compound term),
    /// i.e. could appear as a goal.
    pub fn is_callable(&self) -> bool {
        matches!(self, Term::Atom(_) | Term::Struct(..))
    }

    /// Returns the functor symbol and arity if the term is callable.
    pub fn functor(&self) -> Option<(Symbol, usize)> {
        match self {
            Term::Atom(s) => Some((*s, 0)),
            Term::Struct(s, args) => Some((*s, args.len())),
            _ => None,
        }
    }

    /// Returns the argument list of a compound term, or an empty slice.
    pub fn args(&self) -> &[Term] {
        match self {
            Term::Struct(_, args) => args,
            _ => &[],
        }
    }

    /// If the term is a proper list, returns its elements.
    ///
    /// Returns `None` for partial lists (`[1|X]`) and non-lists.
    pub fn as_list(&self) -> Option<Vec<&Term>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            if cur.is_nil() {
                return Some(out);
            }
            match cur {
                Term::Struct(s, args) if *s == well_known::cons() && args.len() == 2 => {
                    out.push(&args[0]);
                    cur = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// Length of a proper list, or `None` if the term is not a proper list.
    pub fn list_length(&self) -> Option<usize> {
        self.as_list().map(|v| v.len())
    }

    /// Returns `true` if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Atom(_) | Term::Int(_) | Term::Float(_) => true,
            Term::Struct(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Collects the set of variables occurring in the term.
    pub fn variables(&self) -> BTreeSet<VarId> {
        let mut set = BTreeSet::new();
        self.collect_variables(&mut set);
        set
    }

    /// Collects variables into an existing set (avoids repeated allocation).
    pub fn collect_variables(&self, out: &mut BTreeSet<VarId>) {
        match self {
            Term::Var(v) => {
                out.insert(*v);
            }
            Term::Atom(_) | Term::Int(_) | Term::Float(_) => {}
            Term::Struct(_, args) => {
                for a in args {
                    a.collect_variables(out);
                }
            }
        }
    }

    /// Returns `true` if variable `v` occurs in the term.
    pub fn contains_var(&self, v: VarId) -> bool {
        match self {
            Term::Var(w) => *w == v,
            Term::Atom(_) | Term::Int(_) | Term::Float(_) => false,
            Term::Struct(_, args) => args.iter().any(|a| a.contains_var(v)),
        }
    }

    /// Number of constant and function symbols in the term (the paper's
    /// `term_size` measure). Variables count 1 (conservative upper-bound
    /// convention is handled at the measure level, not here).
    pub fn term_size(&self) -> usize {
        match self {
            Term::Var(_) => 1,
            Term::Atom(_) | Term::Int(_) | Term::Float(_) => 1,
            Term::Struct(_, args) => 1 + args.iter().map(Term::term_size).sum::<usize>(),
        }
    }

    /// Depth of the term's tree representation (the paper's `term_depth`
    /// measure). Atomic terms and variables have depth 0.
    pub fn term_depth(&self) -> usize {
        match self {
            Term::Var(_) | Term::Atom(_) | Term::Int(_) | Term::Float(_) => 0,
            Term::Struct(_, args) => 1 + args.iter().map(Term::term_depth).max().unwrap_or(0),
        }
    }

    /// Applies a variable renaming / substitution function to every variable.
    pub fn map_vars(&self, f: &mut impl FnMut(VarId) -> Term) -> Term {
        match self {
            Term::Var(v) => f(*v),
            Term::Atom(_) | Term::Int(_) | Term::Float(_) => self.clone(),
            Term::Struct(s, args) => Term::Struct(*s, args.iter().map(|a| a.map_vars(f)).collect()),
        }
    }

    /// Shifts every variable index by `offset` (used for clause renaming).
    pub fn offset_vars(&self, offset: usize) -> Term {
        self.map_vars(&mut |v| Term::Var(v + offset))
    }

    /// Largest variable index occurring in the term plus one, or 0 if none.
    pub fn var_bound(&self) -> usize {
        self.variables().iter().next_back().map_or(0, |v| v + 1)
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Debug shares the human-readable rendering; structure is evident.
        write!(f, "{self}")
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::fmt_term(self, None, f)
    }
}

impl From<i64> for Term {
    fn from(v: i64) -> Self {
        Term::Int(v)
    }
}

impl From<f64> for Term {
    fn from(v: f64) -> Self {
        Term::float(v)
    }
}

impl From<Symbol> for Term {
    fn from(s: Symbol) -> Self {
        Term::Atom(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_round_trip() {
        let t = Term::list(vec![Term::int(1), Term::int(2), Term::int(3)]);
        let elems = t.as_list().unwrap();
        assert_eq!(elems.len(), 3);
        assert_eq!(*elems[0], Term::int(1));
        assert_eq!(*elems[2], Term::int(3));
        assert_eq!(t.list_length(), Some(3));
    }

    #[test]
    fn partial_list_is_not_proper() {
        let t = Term::list_with_tail(vec![Term::int(1)], Term::var(0));
        assert!(t.as_list().is_none());
        assert_eq!(t.list_length(), None);
    }

    #[test]
    fn nil_properties() {
        assert!(Term::nil().is_nil());
        assert!(!Term::nil().is_cons());
        assert!(Term::cons(Term::int(1), Term::nil()).is_cons());
        assert_eq!(Term::nil().list_length(), Some(0));
    }

    #[test]
    fn compound_with_no_args_is_atom() {
        assert_eq!(Term::compound("foo", vec![]), Term::atom("foo"));
    }

    #[test]
    fn functor_and_args() {
        let t = Term::compound("f", vec![Term::int(1), Term::atom("a")]);
        let (name, arity) = t.functor().unwrap();
        assert_eq!(name.as_str(), "f");
        assert_eq!(arity, 2);
        assert_eq!(t.args().len(), 2);
        assert_eq!(Term::atom("x").functor().unwrap().1, 0);
        assert!(Term::var(0).functor().is_none());
    }

    #[test]
    fn groundness() {
        assert!(Term::atom("a").is_ground());
        assert!(Term::int(3).is_ground());
        assert!(!Term::var(0).is_ground());
        let t = Term::compound("f", vec![Term::int(1), Term::var(2)]);
        assert!(!t.is_ground());
        let g = Term::compound("f", vec![Term::int(1), Term::atom("b")]);
        assert!(g.is_ground());
    }

    #[test]
    fn variable_collection() {
        let t = Term::compound(
            "f",
            vec![
                Term::var(3),
                Term::compound("g", vec![Term::var(1), Term::var(3)]),
            ],
        );
        let vars = t.variables();
        assert_eq!(vars.into_iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!(t.contains_var(1));
        assert!(!t.contains_var(0));
        assert_eq!(t.var_bound(), 4);
    }

    #[test]
    fn term_size_counts_symbols() {
        // f(a, g(b, c)) has symbols f, a, g, b, c => 5
        let t = Term::compound(
            "f",
            vec![
                Term::atom("a"),
                Term::compound("g", vec![Term::atom("b"), Term::atom("c")]),
            ],
        );
        assert_eq!(t.term_size(), 5);
        assert_eq!(Term::atom("a").term_size(), 1);
    }

    #[test]
    fn term_depth_counts_nesting() {
        let t = Term::compound("f", vec![Term::compound("g", vec![Term::atom("a")])]);
        assert_eq!(t.term_depth(), 2);
        assert_eq!(Term::atom("a").term_depth(), 0);
        assert_eq!(Term::var(0).term_depth(), 0);
    }

    #[test]
    fn list_length_matches_as_list() {
        let t = Term::list((0..10).map(Term::int));
        assert_eq!(t.list_length(), Some(10));
        assert_eq!(t.term_size(), 21); // 10 cons cells + 10 ints + nil
    }

    #[test]
    fn offset_vars_shifts_all() {
        let t = Term::compound("f", vec![Term::var(0), Term::var(2)]);
        let shifted = t.offset_vars(10);
        assert_eq!(
            shifted.variables().into_iter().collect::<Vec<_>>(),
            vec![10, 12]
        );
    }

    #[test]
    fn map_vars_substitutes() {
        let t = Term::compound("f", vec![Term::var(0), Term::var(1)]);
        let out = t.map_vars(&mut |v| if v == 0 { Term::int(7) } else { Term::Var(v) });
        assert_eq!(out, Term::compound("f", vec![Term::int(7), Term::var(1)]));
    }

    #[test]
    fn ordered_f64_total_order() {
        let a = OrderedF64(1.0);
        let b = OrderedF64(2.0);
        assert!(a < b);
        let n1 = OrderedF64(f64::NAN);
        let n2 = OrderedF64(f64::NAN);
        assert_eq!(n1.cmp(&n2), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_terms() {
        assert_eq!(Term::atom("foo").to_string(), "foo");
        assert_eq!(Term::int(-3).to_string(), "-3");
        let t = Term::compound("f", vec![Term::int(1), Term::atom("a")]);
        assert_eq!(t.to_string(), "f(1,a)");
        let l = Term::list(vec![Term::int(1), Term::int(2)]);
        assert_eq!(l.to_string(), "[1,2]");
        let pl = Term::list_with_tail(vec![Term::int(1)], Term::var(0));
        assert_eq!(pl.to_string(), "[1|_0]");
    }

    #[test]
    fn conversions() {
        let t: Term = 42i64.into();
        assert_eq!(t, Term::int(42));
        let t: Term = 1.5f64.into();
        assert_eq!(t, Term::float(1.5));
        let t: Term = Symbol::intern("abc").into();
        assert_eq!(t, Term::atom("abc"));
    }
}

//! Observability primitives shared by the granlog runtime crates.
//!
//! Two independent facilities live here:
//!
//! * a [`Registry`] of named metrics — lock-free [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s with a Prometheus-style text exposition
//!   ([`Registry::render`]) and bucket-based quantile estimation — and
//! * a [`Tracer`] — a bounded ring buffer of timestamped structured events
//!   that can be dumped as JSONL for offline inspection.
//!
//! Both are plain instances rather than process globals: tests routinely run
//! several servers inside one process, and each owns its own registry and
//! trace ring. Handles returned by the registry (`Arc<Counter>` etc.) are
//! cheap to clone and update without taking any lock; the registry's internal
//! mutex is touched only at registration and render time.
//!
//! The design constraint inherited from the engine is *zero perturbation when
//! off*: none of these types are wired into hot loops directly. Callers hold
//! an `Option` of a handle and skip the whole facility on `None`; the tracer
//! additionally gates [`Tracer::emit`] on a relaxed atomic load so a disabled
//! tracer costs one branch.

#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depths, open sessions, bytes held).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Replace the current value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram.
///
/// Bucket upper bounds are set at registration and never change; an implicit
/// `+Inf` bucket catches everything above the last bound. Observations update
/// one bucket counter, the total count, and a bit-CAS'd `f64` sum — all
/// lock-free.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    /// One slot per finite bound plus a final `+Inf` slot.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// `f64` bits, updated by compare-exchange.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut sorted: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: sorted.into_boxed_slice(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Record a duration in fractional milliseconds.
    pub fn observe_duration_ms(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64() * 1e3);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }

    /// Estimated quantile (`0.0..=1.0`); see [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// Point-in-time copy of a [`Histogram`], used for reporting and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one extra trailing slot for the implicit `+Inf`.
    pub counts: Vec<u64>,
    /// Total observation count.
    pub count: u64,
    /// Sum of all finite observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation inside
    /// the bucket that holds the target rank. Observations landing in the
    /// `+Inf` bucket are reported as the largest finite bound (a deliberate
    /// underestimate — the data needed for better is not retained).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cumulative;
            cumulative += c;
            if cumulative >= rank {
                if i >= self.bounds.len() {
                    // +Inf bucket: clamp to the largest finite bound.
                    return *self.bounds.last().expect("non-empty bounds");
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                if c == 0 {
                    return upper;
                }
                let into = (rank - prev) as f64 / c as f64;
                return lower + (upper - lower) * into;
            }
        }
        *self.bounds.last().expect("non-empty bounds")
    }
}

/// Default bucket bounds for latency histograms, in milliseconds.
///
/// Spans 50µs to ~16s in powers of two — wide enough for both the engine's
/// sub-millisecond queries and WAL fsyncs on slow disks.
pub const LATENCY_BUCKETS_MS: &[f64] = &[
    0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    2048.0, 4096.0, 8192.0, 16384.0,
];

/// Default bucket bounds for step/heap-size histograms (dimensionless counts).
pub const WORK_BUCKETS: &[f64] = &[
    16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
];

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics with Prometheus-style text exposition.
///
/// Registration is idempotent: asking for an existing name of the same kind
/// returns the same handle, so independent subsystems can share a metric
/// without coordinating. Asking for an existing name with a *different* kind
/// is a programming error and panics.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the histogram `name` with the given finite bucket
    /// upper bounds (an implicit `+Inf` bucket is always appended). Bounds
    /// are fixed by the first registration; later calls return the existing
    /// histogram regardless of the bounds they pass.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Current value of counter `name`, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let metrics = self.metrics.lock().expect("registry poisoned");
        match metrics.get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Current value of gauge `name`, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        let metrics = self.metrics.lock().expect("registry poisoned");
        match metrics.get(name) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// Snapshot of histogram `name`, if registered.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let metrics = self.metrics.lock().expect("registry poisoned");
        match metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Render every metric in Prometheus text exposition format, sorted by
    /// name. Histograms emit cumulative `_bucket{le=...}` series plus `_sum`
    /// and `_count`.
    pub fn render(&self) -> String {
        let metrics = self.metrics.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (i, &bound) in snap.bounds.iter().enumerate() {
                        cumulative += snap.counts[i];
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
                    let _ = writeln!(out, "{name}_sum {}", render_f64(snap.sum));
                    let _ = writeln!(out, "{name}_count {}", snap.count);
                }
            }
        }
        out
    }
}

fn render_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

// ---------------------------------------------------------------------------
// Structured tracing
// ---------------------------------------------------------------------------

/// A field value attached to a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point; non-finite values render as JSON `null`.
    F64(f64),
    /// Owned string.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::U64(v as u64)
    }
}

/// One timestamped event in the trace ring.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the tracer's epoch.
    pub ts_us: u64,
    /// Event kind, e.g. `"query_begin"` or `"wal_fsync"`.
    pub kind: &'static str,
    /// Structured fields in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    /// Render the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(out, "{{\"ts_us\":{},\"kind\":", self.ts_us);
        push_json_string(&mut out, self.kind);
        for (key, value) in &self.fields {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            match value {
                Value::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::F64(v) => {
                    if v.is_finite() {
                        let _ = write!(out, "{v}");
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Str(s) => push_json_string(&mut out, s),
            }
        }
        out.push('}');
        out
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string literal.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// A bounded ring buffer of structured [`TraceEvent`]s.
///
/// `emit` is gated on a relaxed atomic flag, so a disabled tracer costs one
/// load and one branch. When the ring is full the oldest event is dropped and
/// counted; the drop count is reported by [`Tracer::dropped`] so consumers
/// can tell a quiet system from an overflowing one.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    ring: Mutex<Ring>,
}

impl Tracer {
    /// Create an enabled tracer retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    /// Create a disabled tracer (serve keeps one around and lets sessions
    /// switch it on).
    pub fn disabled(capacity: usize) -> Self {
        let t = Tracer::new(capacity);
        t.set_enabled(false);
        t
    }

    /// Whether [`Tracer::emit`] currently records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable event recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record one event if enabled. `fields` render in the given order.
    pub fn emit(&self, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        if !self.is_enabled() {
            return;
        }
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.buf.len() >= ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(TraceEvent {
            ts_us,
            kind,
            fields,
        });
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped to ring overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("trace ring poisoned").dropped
    }

    /// Snapshot the retained events, oldest first, without draining.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        ring.buf.iter().cloned().collect()
    }

    /// Render the retained events as JSONL (one object per line, oldest
    /// first). When `drain` is true the ring is emptied, so repeated dumps
    /// see only new events.
    pub fn jsonl(&self, drain: bool) -> String {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        let mut out = String::new();
        for event in ring.buf.iter() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        if drain {
            ring.buf.clear();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("granlog_queries_total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter_value("granlog_queries_total"), Some(5));
        let g = reg.gauge("granlog_sessions");
        g.set(3);
        g.sub(1);
        assert_eq!(reg.gauge_value("granlog_sessions"), Some(2));
        // Re-registration returns the same handle.
        reg.counter("granlog_queries_total").inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ms", &[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 7.0, 100.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.counts, vec![1, 2, 1, 1, 1]);
        assert!((snap.sum - 113.5).abs() < 1e-9);
        // Median rank 3 lands in the (1,2] bucket.
        let p50 = snap.quantile(0.5);
        assert!(p50 > 1.0 && p50 <= 2.0, "p50 = {p50}");
        // The +Inf observation clamps to the top finite bound.
        assert_eq!(snap.quantile(1.0), 8.0);
        assert_eq!(snap.quantile(0.0), 1.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let reg = Registry::new();
        reg.counter("granlog_a_total").add(2);
        reg.gauge("granlog_b").set(-7);
        reg.histogram("granlog_c_ms", &[1.0, 10.0]).observe(3.0);
        let text = reg.render();
        assert!(text.contains("# TYPE granlog_a_total counter\ngranlog_a_total 2\n"));
        assert!(text.contains("# TYPE granlog_b gauge\ngranlog_b -7\n"));
        assert!(text.contains("granlog_c_ms_bucket{le=\"1\"} 0\n"));
        assert!(text.contains("granlog_c_ms_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("granlog_c_ms_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("granlog_c_ms_sum 3\n"));
        assert!(text.contains("granlog_c_ms_count 1\n"));
        // Every non-comment line is `name value` or `name{labels} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }

    #[test]
    fn tracer_ring_caps_and_drops() {
        let t = Tracer::new(3);
        for i in 0..5u64 {
            t.emit("tick", vec![("i", Value::from(i))]);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let events = t.events();
        assert_eq!(events[0].fields[0].1, Value::U64(2));
        assert_eq!(events[2].fields[0].1, Value::U64(4));
    }

    #[test]
    fn tracer_disabled_records_nothing() {
        let t = Tracer::disabled(8);
        t.emit("tick", vec![]);
        assert!(t.is_empty());
        t.set_enabled(true);
        t.emit("tick", vec![]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn jsonl_escapes_and_drains() {
        let t = Tracer::new(8);
        t.emit(
            "query_begin",
            vec![
                ("goal", Value::from("nrev(\"a\\b\",\nX)")),
                ("budget", Value::from(4096u64)),
                ("ratio", Value::from(0.5)),
                ("neg", Value::from(-1i64)),
            ],
        );
        let dump = t.jsonl(true);
        let line = dump.lines().next().expect("one line");
        assert!(line.starts_with("{\"ts_us\":"));
        assert!(line.contains("\"kind\":\"query_begin\""));
        assert!(line.contains("\"goal\":\"nrev(\\\"a\\\\b\\\",\\nX)\""));
        assert!(line.contains("\"budget\":4096"));
        assert!(line.contains("\"ratio\":0.5"));
        assert!(line.contains("\"neg\":-1"));
        assert!(line.ends_with('}'));
        // Drained: a second dump is empty.
        assert!(t.jsonl(false).is_empty());
    }

    #[test]
    fn nonfinite_float_renders_null() {
        let event = TraceEvent {
            ts_us: 1,
            kind: "x",
            fields: vec![("v", Value::F64(f64::NAN))],
        };
        assert!(event.to_json().contains("\"v\":null"));
    }
}

% Sum of the sums of a list of lists: each inner sum is an independent
% parallel task whose size is the inner list's length — the textbook case for
% a '$grain_ge'(L, length, K) runtime test (Cost_sum_list(n) = n + 1).
:- mode double_sum(+, -).
:- mode sum_list(+, -).

double_sum([], 0).
double_sum([L|Ls], S) :-
    sum_list(L, S1) & double_sum(Ls, S2),
    S is S1 + S2.

sum_list([], 0).
sum_list([X|Xs], S) :- sum_list(Xs, S1), S is X + S1.

% Naive reverse — the worked example of the paper's Appendix A.
% Cost_nrev(n) = 0.5 n^2 + 1.5 n + 1 resolutions; Psi_nrev(n) = n.
:- mode nrev(+, -).
:- mode append(+, +, -).

nrev([], []).
nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).

append([], L, L).
append([H|L1], L2, [H|L3]) :- append(L1, L2, L3).

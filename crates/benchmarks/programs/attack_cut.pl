% Static random-cut instance (facts only — combine with attack_graph.pl).
%
% Two clusters joined by a single cut edge h2 -> h5. The left cluster
% {h0..h3} is the attacker's side; the right cluster {h4..h7} hangs off
% the cut. h4 has no incoming link at all, so it is `safe/1`. Severing
% the cut edge would make the whole right cluster safe.

host(h0). host(h1). host(h2). host(h3).
host(h4). host(h5). host(h6). host(h7).

% Left cluster (a small DAG).
link(h0, h1). link(h0, h2). link(h1, h3). link(h2, h3).
% The cut.
link(h2, h5).
% Right cluster.
link(h5, h6). link(h5, h7). link(h6, h7).

vuln(h1). vuln(h3). vuln(h5). vuln(h7).

entry(h0).

% Attack-graph ruleset (MulVAL-flavoured network reachability analysis).
%
% EDB (facts, supplied per topology):
%   host(H)     — H is a host on the network.
%   link(S, T)  — a directed network link from S to T.
%   vuln(H)     — H runs an exploitable service.
%   entry(H)    — the attacker starts with a foothold on H.
%
% IDB (derived):
%   owned(H)    — the attacker can take control of H.
%   reach(H)    — the attacker can route packets to H.
%   safe(H)     — H is unreachable from every entry point.
%   frontier(H) — H is adjacent to owned territory but not yet owned.
%   exposed(H)  — H is reachable and vulnerable but not owned (a target
%                 one lateral move away from compromise).
%
% The recursive clauses put `link/2` before the recursive call so the
% rules are also runnable top-down: a ground SLD query terminates on any
% acyclic topology, which is what makes the bottom-up/SLD differential
% oracle possible. All generated topologies are DAGs.

owned(H) :- entry(H).
owned(T) :- link(S, T), vuln(T), owned(S).

reach(H) :- entry(H).
reach(T) :- link(S, T), reach(S).

safe(H) :- host(H), \+ reach(H).

frontier(T) :- link(S, T), owned(S), \+ owned(T).

exposed(H) :- reach(H), vuln(H), \+ owned(H).

% Point-in-polygon classification: every query point is classified against
% the polygon's edge list independently (crossing-number parity test), so the
% per-point checks run in parallel.
:- mode poly_inclusion(+, +, -).
:- mode classify(+, +, -).
:- mode edge_count(+, +, +, -).

poly_inclusion([], _, []).
poly_inclusion([P|Ps], Poly, [R|Rs]) :-
    classify(P, Poly, R) & poly_inclusion(Ps, Poly, Rs).

classify(p(X, Y), Poly, R) :-
    edge_count(Poly, X, Y, C),
    ( 1 is C mod 2 -> R = inside ; R = outside ).

edge_count([], _, _, 0).
edge_count([_], _, _, 0).
edge_count([v(X1, Y1), v(X2, Y2)|Vs], X, Y, C) :-
    crossing(Y1, Y2, X1, X2, X, Y, D),
    edge_count([v(X2, Y2)|Vs], X, Y, C1),
    C is C1 + D.

% A horizontal ray to the right of (X, Y) crosses the edge when the edge
% spans Y vertically and lies to the right of X on average.
crossing(Y1, Y2, X1, X2, X, Y, D) :-
    (   Y1 =< Y, Y2 > Y -> edge_side(X1, X2, X, D)
    ;   Y2 =< Y, Y1 > Y -> edge_side(X1, X2, X, D)
    ;   D = 0
    ).

edge_side(X1, X2, X, D) :-
    ( X1 + X2 > 2 * X -> D = 1 ; D = 0 ).

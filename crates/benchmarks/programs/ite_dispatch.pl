% If-then-else dispatch: Collatz trajectory lengths for every start value
% in a list. Each step is one compiled if-then-else (even/odd dispatch on an
% arithmetic guard) plus eager arithmetic, so the program is dominated by
% the engine's control-construct path rather than by unification.
:- mode collatz_lens(+, -).
:- mode steps(+, -).

collatz_lens([], []).
collatz_lens([N|Ns], [L|Ls]) :-
    steps(N, L),
    collatz_lens(Ns, Ls).

steps(1, 0) :- !.
steps(N, L) :-
    ( N mod 2 =:= 0 ->
        M is N // 2
    ;   M is 3 * N + 1
    ),
    steps(M, L1),
    L is L1 + 1.

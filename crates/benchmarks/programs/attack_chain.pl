% Static chain instance (facts only — combine with attack_graph.pl).
%
% A six-host line h0 -> h1 -> ... -> h5. Ownership propagates along the
% chain until the first non-vulnerable host (h3) breaks it: h3 is the
% frontier, and the vulnerable hosts beyond it (h4) are reachable but
% not owned — the `exposed/1` answers.

host(h0). host(h1). host(h2). host(h3). host(h4). host(h5).

link(h0, h1). link(h1, h2). link(h2, h3). link(h3, h4). link(h4, h5).

vuln(h1). vuln(h2). vuln(h4).

entry(h0).

% Quicksort with parallel recursive calls (the paper's running example of a
% program whose task sizes shrink as the recursion deepens).
:- mode qsort(+, -).
:- mode partition(+, +, -, -).
:- mode qapp(+, +, -).

qsort([], []).
qsort([P|Xs], S) :-
    partition(Xs, P, Small, Big),
    qsort(Small, S1) & qsort(Big, S2),
    qapp(S1, [P|S2], S).

partition([], _, [], []).
partition([X|Xs], P, [X|S], B) :- X =< P, partition(Xs, P, S, B).
partition([X|Xs], P, S, [X|B]) :- X > P, partition(Xs, P, S, B).

qapp([], L, L).
qapp([H|T], L, [H|R]) :- qapp(T, L, R).

% Doubly recursive Fibonacci with and-parallel recursive calls.
% The analysis majorises the two calls to 2*Cost(n-1) + 1, giving the
% geometric bound 2^n - 1 and a small spawn threshold.
:- mode fib(+, -).

fib(0, 0).
fib(1, 1).
fib(M, N) :-
    M > 1,
    M1 is M - 1,
    M2 is M - 2,
    fib(M1, N1) & fib(M2, N2),
    N is N1 + N2.

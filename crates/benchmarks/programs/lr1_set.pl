% LR(1)-style item-set closure rounds: every round recomputes the closure of
% each item set, and the per-set closures are independent parallel tasks.
:- mode lr_sets(+, +, -).
:- mode close_all(+, -).
:- mode close_set(+, -).

lr_sets(0, Sets, Sets).
lr_sets(N, Sets, Out) :-
    N > 0,
    N1 is N - 1,
    close_all(Sets, Next),
    lr_sets(N1, Next, Out).

close_all([], []).
close_all([S|Ss], [C|Cs]) :-
    close_set(S, C) & close_all(Ss, Cs).

% A cheap deterministic "closure": advance every item through the item
% automaton's transition hash.
close_set([], []).
close_set([I|Is], [J|Js]) :-
    J is (I * 31 + 17) mod 97,
    close_set(Is, Js).

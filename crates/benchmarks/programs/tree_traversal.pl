% Binary tree traversal summing the leaves. The recursion descends into
% subterms whose sizes the list-length / term-size measures cannot relate
% exactly (each subtree's sibling is non-ground), so the cost analysis answers
% infinity and the conjunction stays unconditionally parallel — the paper's
% "sequentialise only when it can be proven better" philosophy.
:- mode tsum(+, -).

tsum(leaf(V), V).
tsum(node(L, R), S) :-
    tsum(L, S1) & tsum(R, S2),
    S is S1 + S2.

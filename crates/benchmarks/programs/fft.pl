% Radix-2 decimation-in-time FFT over complex points c(Re, Im). The split
% halves the input (Psi_fsplit = n/2), the two half-size transforms run in
% parallel, and the butterfly recombines them with twiddle factors.
:- mode fft(+, -).
:- mode fsplit(+, -, -).
:- mode butterfly(+, +, +, +, -, -).
:- mode fapp(+, +, -).

fft([], []).
fft([X], [X]).
fft([X, Y|Zs], Spectrum) :-
    fsplit([X, Y|Zs], Evens, Odds),
    fft(Evens, E) & fft(Odds, O),
    length([X, Y|Zs], N),
    butterfly(E, O, N, 0, Plus, Minus),
    fapp(Plus, Minus, Spectrum).

fsplit([], [], []).
fsplit([X|Xs], [X|B], A) :- fsplit(Xs, A, B).

% X[k] = E[k] + w_N^k O[k]; X[k + N/2] = E[k] - w_N^k O[k].
butterfly([], [], _, _, [], []).
butterfly([c(Er, Ei)|Es], [c(Or, Oi)|Os], N, K, [c(Pr, Pi)|Ps], [c(Mr, Mi)|Ms]) :-
    Wr is cos(2 * pi * K / N),
    Wi is -(sin(2 * pi * K / N)),
    Tr is Wr * Or - Wi * Oi,
    Ti is Wr * Oi + Wi * Or,
    Pr is Er + Tr,
    Pi is Ei + Ti,
    Mr is Er - Tr,
    Mi is Ei - Ti,
    K1 is K + 1,
    butterfly(Es, Os, N, K1, Ps, Ms).

fapp([], L, L).
fapp([H|T], L, [H|R]) :- fapp(T, L, R).

% Independent consistency checks over a constraint list. Every check does a
% small, bounded amount of work (W = X mod 16 + 10 <= 25 spin steps), so its
% cost is *constant*: under a high task-management overhead the analysis
% sequentialises every spawn (threshold: never parallel), while under a cheap
% one it keeps them all (always parallel) — the crux of Table 1 vs Table 2.
:- mode consistent(+).
:- mode check(+).
:- mode spin(+).
:- measure spin(int).

consistent([]).
consistent([X|Xs]) :- check(X) & consistent(Xs).

check(X) :- W is X mod 16 + 10, spin(W).

spin(N) :- N =< 0.
spin(N) :- N > 0, N1 is N - 1, spin(N1).

% Static star instance (facts only — combine with attack_graph.pl).
%
% Hub h0 links to five spokes; h6 and h7 are off-network (isolated), so
% they are the `safe/1` answers. Spokes h2 and h4 are vulnerable and get
% owned; h1, h3, h5 stay on the frontier.

host(h0). host(h1). host(h2). host(h3).
host(h4). host(h5). host(h6). host(h7).

link(h0, h1). link(h0, h2). link(h0, h3).
link(h0, h4). link(h0, h5).

vuln(h2). vuln(h4). vuln(h6).

entry(h0).

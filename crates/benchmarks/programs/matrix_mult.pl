% Matrix multiplication with row-level parallelism. The second matrix is
% supplied in transposed form (a list of columns), so every result row is an
% independent list of dot products: mmult(A, Bt, C) with C[i][j] = A[i] . Bt[j].
:- mode mmult(+, +, -).
:- mode mrow(+, +, -).
:- mode dot(+, +, -).

mmult([], _, []).
mmult([R|Rs], Cols, [P|Ps]) :-
    mrow(Cols, R, P) & mmult(Rs, Cols, Ps).

mrow([], _, []).
mrow([C|Cs], R, [V|Vs]) :-
    dot(R, C, V),
    mrow(Cs, R, Vs).

dot([], _, 0).
dot([X|Xs], [Y|Ys], S) :-
    dot(Xs, Ys, S1),
    S is S1 + X * Y.

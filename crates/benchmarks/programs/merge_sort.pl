% Merge sort with parallel recursive calls. The split halves its input
% (Psi_msplit = n/2), so the cost recurrence is divide-and-conquer; merge
% recurses on the *sum* of its two list arguments.
:- mode msort(+, -).
:- mode msplit(+, -, -).
:- mode merge(+, +, -).

msort([], []).
msort([X], [X]).
msort([X, Y|Zs], S) :-
    msplit([X, Y|Zs], A, B),
    msort(A, SA) & msort(B, SB),
    merge(SA, SB, S).

msplit([], [], []).
msplit([X|Xs], [X|B], A) :- msplit(Xs, A, B).

merge([], L, L).
merge([X|Xs], [], [X|Xs]).
merge([X|Xs], [Y|Ys], [X|R]) :- X =< Y, merge(Xs, [Y|Ys], R).
merge([X|Xs], [Y|Ys], [Y|R]) :- X > Y, merge([X|Xs], Ys, R).

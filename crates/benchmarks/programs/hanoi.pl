% Towers of Hanoi producing the move list, with the two subtowers moved in
% parallel. hanoi(N) produces 2^N - 1 moves.
:- mode hanoi(+, +, +, +, -).
:- mode happ(+, +, -).

hanoi(0, _, _, _, []).
hanoi(N, From, To, Via, Moves) :-
    N > 0,
    N1 is N - 1,
    hanoi(N1, From, Via, To, Before) & hanoi(N1, Via, To, From, After),
    happ(Before, [mv(From, To)|After], Moves).

happ([], L, L).
happ([H|T], L, [H|R]) :- happ(T, L, R).

% Concatenation of many short lists. Copying a chunk is independent of
% flattening the remaining chunks, so the two run in parallel; the chunks are
% tiny, which makes uncontrolled spawning pay pure overhead.
:- mode flat(+, -).
:- mode fcopy(+, -).
:- mode fapp(+, +, -).

flat([], []).
flat([L|Ls], F) :-
    fcopy(L, C) & flat(Ls, F1),
    fapp(C, F1, F).

fcopy([], []).
fcopy([X|Xs], [X|Ys]) :- fcopy(Xs, Ys).

fapp([], L, L).
fapp([H|T], L, [H|R]) :- fapp(T, L, R).

% Cut-driven search pruning: deduplicate a list with a committed membership
% test. Every element scans the already-kept prefix with memb/2, whose cut
% discards the recursion's choice points the moment a match is found — the
% classic first-solution commit. Quadratic in the list length, and almost
% all of its work runs through the engine's cut/choice-point machinery.
:- mode dedup(+, -).
:- mode memb(+, +).

dedup(L, U) :- dedup_(L, [], U).

dedup_([], _, []).
dedup_([X|Xs], Seen, U) :-
    ( memb(X, Seen) ->
        dedup_(Xs, Seen, U)
    ;   U = [X|U1],
        dedup_(Xs, [X|Seen], U1)
    ).

memb(X, [X|_]) :- !.
memb(X, [_|T]) :- memb(X, T).

//! # granlog-benchmarks
//!
//! The benchmark suite of *Task Granularity Analysis in Logic Programs*
//! (PLDI 1990), together with the experiment harness that reproduces the
//! paper's evaluation on the engine/simulator substrate:
//!
//! * [`suite`] — the twelve Table-1 programs (`consistency`, `fib`, `hanoi`,
//!   `quick_sort`, `lr1_set`, `double_sum`, `fft`, `flatten`, `matrix_mult`,
//!   `merge_sort`, `poly_inclusion`, `tree_traversal`) plus the Appendix's
//!   `nrev`, each as an and-parallel Prolog program with mode/measure
//!   declarations and a deterministic query generator;
//! * [`generate`] — reproducible workload generators (lists, matrices, trees,
//!   polygons, ...);
//! * [`harness`] — run a benchmark through analysis → granularity control →
//!   engine → simulator, with or without control, producing the rows of
//!   Tables 1 and 2 and the points of Figure 2.
//!
//! # Example
//!
//! ```no_run
//! use granlog_benchmarks::harness::{table_row, ControlMode};
//! use granlog_benchmarks::suite::benchmark;
//! use granlog_sim::SimConfig;
//!
//! let fib = benchmark("fib").unwrap();
//! let row = table_row(&fib, 15, &SimConfig::rolog4());
//! println!("{}: T0 = {:.0}, T1 = {:.0}, speedup = {:.1}%",
//!          row.label, row.t_without, row.t_with, row.speedup_percent);
//! ```

pub mod generate;
pub mod harness;
pub mod suite;

pub use harness::{
    grain_size_sweep, run_benchmark, table_row, ControlMode, RunResult, SweepPoint, TableRow,
};
pub use suite::{
    all_benchmarks, attack_instances, benchmark, control_benchmarks, datalog_benchmark,
    datalog_benchmarks, nrev_benchmark, table2_benchmarks, Benchmark, DatalogBenchmark,
    ATTACK_RULES,
};

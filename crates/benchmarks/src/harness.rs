//! The experiment harness: run a benchmark through the analysis, the
//! granularity-control transformation, the execution engine and the
//! multiprocessor simulator, with or without granularity control.
//!
//! This is the code path that regenerates the paper's Tables 1 and 2 (execution
//! time with no granularity control, `T0`, versus with granularity control,
//! `T1`, on a simulated 4-processor machine) and Figure 2 (execution time as a
//! function of the grain-size threshold).

use crate::suite::Benchmark;
use granlog_analysis::annotate::{apply_granularity_control, sequentialize, AnnotateOptions};
use granlog_analysis::pipeline::{analyze_program, AnalysisOptions, ProgramAnalysis};
use granlog_analysis::Measure;
use granlog_engine::{Machine, MachineConfig, QueryOutcome};
use granlog_ir::symbol::well_known;
use granlog_ir::{Clause, PredId, Program, Term};
use granlog_sim::{simulate, speedup_percent, SimConfig, SimOutcome};
use serde::{Deserialize, Serialize};

/// How the program is prepared before execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControlMode {
    /// Run the program exactly as annotated by the programmer (every `&`
    /// spawns) — the paper's `T0`.
    NoControl,
    /// Apply the granularity analysis and guard parallel conjunctions with the
    /// derived thresholds — the paper's `T1`.
    WithControl,
    /// Guard every parallel conjunction with a fixed grain-size threshold
    /// (used for the Figure 2 sweep).
    FixedThreshold(u64),
    /// Strip all parallelism (the purely sequential baseline).
    Sequential,
}

/// The result of one benchmark run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Input size used.
    pub size: usize,
    /// Preparation mode.
    pub mode: ControlMode,
    /// Did the query succeed? (It always should.)
    pub succeeded: bool,
    /// Total sequential work executed, in cost-model units.
    pub total_work: f64,
    /// Number of tasks spawned during (recorded) execution.
    pub spawned_tasks: usize,
    /// Number of runtime grain-size tests executed.
    pub grain_tests: u64,
    /// The simulated execution on the configured machine.
    pub sim: SimOutcome,
}

impl RunResult {
    /// The simulated execution time.
    pub fn time(&self) -> f64 {
        self.sim.makespan
    }
}

/// A row of Table 1 / Table 2: one benchmark, with and without granularity
/// control.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRow {
    /// The paper-style label, e.g. `fib(15)`.
    pub label: String,
    /// Simulated time without granularity control (`T0`).
    pub t_without: f64,
    /// Simulated time with granularity control (`T1`).
    pub t_with: f64,
    /// `(T0 − T1)/T0`, in percent.
    pub speedup_percent: f64,
    /// Tasks spawned without control.
    pub tasks_without: usize,
    /// Tasks spawned with control.
    pub tasks_with: usize,
    /// Runtime grain tests executed with control.
    pub grain_tests: u64,
}

/// One point of the Figure 2 sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The grain-size threshold used for every parallel conjunction.
    pub grain_size: u64,
    /// Simulated execution time at that threshold.
    pub time: f64,
    /// Number of tasks spawned at that threshold.
    pub spawned_tasks: usize,
}

/// Prepares a benchmark's program according to the control mode.
///
/// `overhead` is the per-task overhead of the target machine, used as the
/// threshold parameter `W` when `mode` is [`ControlMode::WithControl`].
pub fn prepare_program(
    program: &Program,
    analysis: &ProgramAnalysis,
    mode: ControlMode,
    overhead: f64,
) -> Program {
    match mode {
        ControlMode::NoControl => program.clone(),
        ControlMode::Sequential => sequentialize(program),
        ControlMode::WithControl => {
            apply_granularity_control(program, analysis, &AnnotateOptions { overhead }).program
        }
        ControlMode::FixedThreshold(k) => with_fixed_grain_size(program, analysis, k),
    }
}

/// Rewrites every parallel conjunction so that it is guarded by grain-size
/// tests with the fixed threshold `k` (measuring the driving input argument of
/// the first analysable goal of each arm). Arms whose goals the analysis knows
/// nothing about are left unguarded. `k == 0` keeps everything parallel.
pub fn with_fixed_grain_size(program: &Program, analysis: &ProgramAnalysis, k: u64) -> Program {
    if k == 0 {
        return program.clone();
    }
    let mut out = Program::new();
    for directive in program.directives() {
        out.add_directive(directive.clone());
    }
    for clause in program.clauses() {
        let body = rewrite_fixed(&clause.body, analysis, k);
        out.add_clause(Clause::new(
            clause.head.clone(),
            body,
            clause.var_names.clone(),
        ));
    }
    out
}

fn rewrite_fixed(body: &Term, analysis: &ProgramAnalysis, k: u64) -> Term {
    match body {
        Term::Struct(s, args) if *s == well_known::par_and() && args.len() == 2 => {
            let mut arms = Vec::new();
            flatten_par(body, &mut arms);
            let arms: Vec<Term> = arms.iter().map(|a| rewrite_fixed(a, analysis, k)).collect();
            let tests: Vec<Term> = arms
                .iter()
                .filter_map(|arm| fixed_test_for_arm(arm, analysis, k))
                .collect();
            let par = fold(&arms, well_known::par_and());
            if tests.is_empty() {
                return par;
            }
            let seq = fold(&arms, well_known::comma());
            let cond = fold(&tests, well_known::comma());
            Term::Struct(
                well_known::semicolon(),
                vec![Term::Struct(well_known::arrow(), vec![cond, par]), seq],
            )
        }
        Term::Struct(s, args) => Term::Struct(
            *s,
            args.iter().map(|a| rewrite_fixed(a, analysis, k)).collect(),
        ),
        other => other.clone(),
    }
}

fn fixed_test_for_arm(arm: &Term, analysis: &ProgramAnalysis, k: u64) -> Option<Term> {
    let goals = conj_goals(arm);
    for goal in goals {
        let Some(pred) = PredId::of_term(goal) else {
            continue;
        };
        let Some(info) = analysis.pred(pred) else {
            continue;
        };
        if info.params.is_empty() {
            continue;
        }
        let (pos, _) = info
            .driving_input()
            .unwrap_or((info.input_positions[0], info.params[0]));
        let arg = goal.args().get(pos)?.clone();
        let measure = info.measures.get(pos).copied().unwrap_or(Measure::TermSize);
        return Some(Term::compound(
            "$grain_ge",
            vec![
                arg,
                Term::atom(measure.name()),
                Term::Int(i64::try_from(k).unwrap_or(i64::MAX)),
            ],
        ));
    }
    None
}

fn conj_goals(arm: &Term) -> Vec<&Term> {
    let mut out = Vec::new();
    fn go<'a>(t: &'a Term, out: &mut Vec<&'a Term>) {
        match t {
            Term::Struct(s, args) if *s == well_known::comma() && args.len() == 2 => {
                go(&args[0], out);
                go(&args[1], out);
            }
            other => out.push(other),
        }
    }
    go(arm, &mut out);
    out
}

fn flatten_par<'a>(t: &'a Term, out: &mut Vec<&'a Term>) {
    match t {
        Term::Struct(s, args) if *s == well_known::par_and() && args.len() == 2 => {
            flatten_par(&args[0], out);
            flatten_par(&args[1], out);
        }
        other => out.push(other),
    }
}

fn fold(goals: &[Term], op: granlog_ir::Symbol) -> Term {
    match goals.len() {
        0 => Term::Atom(well_known::true_()),
        1 => goals[0].clone(),
        _ => {
            let mut iter = goals.iter().rev();
            let last = iter.next().expect("len >= 2").clone();
            iter.fold(last, |acc, g| Term::Struct(op, vec![g.clone(), acc]))
        }
    }
}

/// Executes a prepared program on the engine (on a large-stack worker thread)
/// and returns the engine outcome.
///
/// # Panics
///
/// Panics if the query fails to parse or the engine reports an error — for the
/// bundled benchmarks both indicate a bug, and the experiment harness wants a
/// loud failure rather than a silently missing table row.
pub fn execute(program: Program, query: String) -> QueryOutcome {
    granlog_engine::with_large_stack(move || {
        let mut machine = Machine::with_config(&program, MachineConfig::default());
        machine
            .run_query(&query)
            .unwrap_or_else(|e| panic!("engine error while running {query}: {e}"))
    })
}

/// Runs one benchmark at one size in one control mode on one simulated
/// machine.
pub fn run_benchmark(
    bench: &Benchmark,
    size: usize,
    sim_config: &SimConfig,
    mode: ControlMode,
) -> RunResult {
    let program = bench
        .program()
        .unwrap_or_else(|e| panic!("benchmark {} does not parse: {e}", bench.name));
    let analysis = analyze_program(&program, &AnalysisOptions::default());
    let overhead = sim_config.overhead.per_task_overhead();
    let prepared = prepare_program(&program, &analysis, mode, overhead);
    let query = bench.query(size);
    let outcome = execute(prepared, query);
    let sim = simulate(&outcome.task_tree, sim_config);
    RunResult {
        benchmark: bench.name.to_owned(),
        size,
        mode,
        succeeded: outcome.succeeded,
        total_work: outcome.work,
        spawned_tasks: outcome.task_tree.spawned_tasks(),
        grain_tests: outcome.counters.grain_tests,
        sim,
    }
}

/// Runs a benchmark with and without granularity control and builds the
/// corresponding table row.
pub fn table_row(bench: &Benchmark, size: usize, sim_config: &SimConfig) -> TableRow {
    let without = run_benchmark(bench, size, sim_config, ControlMode::NoControl);
    let with = run_benchmark(bench, size, sim_config, ControlMode::WithControl);
    TableRow {
        label: format!("{}({})", bench.name, size),
        t_without: without.time(),
        t_with: with.time(),
        speedup_percent: speedup_percent(without.time(), with.time()),
        tasks_without: without.spawned_tasks,
        tasks_with: with.spawned_tasks,
        grain_tests: with.grain_tests,
    }
}

/// Sweeps the grain-size threshold for a benchmark (Figure 2): for every
/// threshold, all parallel conjunctions are guarded with that fixed grain
/// size and the program is executed and simulated.
pub fn grain_size_sweep(
    bench: &Benchmark,
    size: usize,
    sim_config: &SimConfig,
    thresholds: &[u64],
) -> Vec<SweepPoint> {
    thresholds
        .iter()
        .map(|&k| {
            let result = run_benchmark(bench, size, sim_config, ControlMode::FixedThreshold(k));
            SweepPoint {
                grain_size: k,
                time: result.time(),
                spawned_tasks: result.spawned_tasks,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::benchmark;
    use granlog_sim::OverheadModel;

    fn small_config() -> SimConfig {
        SimConfig::new(4, OverheadModel::rolog_like())
    }

    #[test]
    fn fib_runs_in_all_modes() {
        let fib = benchmark("fib").unwrap();
        for mode in [
            ControlMode::NoControl,
            ControlMode::WithControl,
            ControlMode::Sequential,
            ControlMode::FixedThreshold(5),
        ] {
            let r = run_benchmark(&fib, 10, &small_config(), mode);
            assert!(r.succeeded, "fib failed in mode {mode:?}");
            assert!(r.total_work > 0.0);
        }
    }

    #[test]
    fn control_reduces_task_count_under_high_overhead() {
        let fib = benchmark("fib").unwrap();
        let without = run_benchmark(&fib, 12, &small_config(), ControlMode::NoControl);
        let with = run_benchmark(&fib, 12, &small_config(), ControlMode::WithControl);
        assert!(without.spawned_tasks > with.spawned_tasks);
        assert!(with.grain_tests > 0);
        // And the simulated time improves.
        assert!(with.time() < without.time());
    }

    #[test]
    fn sequential_mode_spawns_nothing() {
        let qs = benchmark("quick_sort").unwrap();
        let r = run_benchmark(&qs, 15, &small_config(), ControlMode::Sequential);
        assert!(r.succeeded);
        assert_eq!(r.spawned_tasks, 0);
        assert_eq!(r.grain_tests, 0);
    }

    #[test]
    fn fixed_threshold_zero_equals_no_control() {
        let qs = benchmark("quick_sort").unwrap();
        let a = run_benchmark(&qs, 15, &small_config(), ControlMode::NoControl);
        let b = run_benchmark(&qs, 15, &small_config(), ControlMode::FixedThreshold(0));
        assert_eq!(a.spawned_tasks, b.spawned_tasks);
        assert!((a.time() - b.time()).abs() < 1e-9);
    }

    #[test]
    fn huge_fixed_threshold_behaves_like_sequential() {
        let fib = benchmark("fib").unwrap();
        let fixed = run_benchmark(
            &fib,
            10,
            &small_config(),
            ControlMode::FixedThreshold(1_000_000),
        );
        assert_eq!(fixed.spawned_tasks, 0);
        let seq = run_benchmark(&fib, 10, &small_config(), ControlMode::Sequential);
        // The fixed-threshold run pays for its grain tests, so it is at least
        // as slow as the plain sequential run.
        assert!(fixed.time() >= seq.time());
    }

    #[test]
    fn table_row_reports_consistent_speedup() {
        let fib = benchmark("fib").unwrap();
        let row = table_row(&fib, 11, &small_config());
        let expected = speedup_percent(row.t_without, row.t_with);
        assert!((row.speedup_percent - expected).abs() < 1e-9);
        assert!(row.t_without > 0.0 && row.t_with > 0.0);
    }

    #[test]
    fn sweep_produces_one_point_per_threshold() {
        let fib = benchmark("fib").unwrap();
        let points = grain_size_sweep(&fib, 10, &small_config(), &[0, 2, 8, 1_000]);
        assert_eq!(points.len(), 4);
        // Spawned tasks decrease (weakly) as the grain size grows.
        for pair in points.windows(2) {
            assert!(pair[1].spawned_tasks <= pair[0].spawned_tasks);
        }
        // At a huge threshold nothing is spawned.
        assert_eq!(points.last().unwrap().spawned_tasks, 0);
    }
}

//! The benchmark registry: the twelve programs of the paper's Tables 1 and 2,
//! plus the Appendix's `nrev` example.

use crate::generate;
use granlog_ir::{parser::parse_program, ParseError, Program};

/// A benchmark: a Prolog program (annotated with `&` parallel conjunctions)
/// plus a query generator parameterised by a single "size".
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Short name (matches the paper's tables, e.g. `"fib"`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The Prolog source text.
    pub source: &'static str,
    /// The size used in the paper's tables (e.g. 15 for `fib(15)`).
    pub default_size: usize,
    /// Builds the query string for a given size.
    query: fn(usize) -> String,
    /// Smaller size suitable for unit/integration tests.
    pub test_size: usize,
}

impl Benchmark {
    /// Parses the benchmark's program.
    ///
    /// # Errors
    ///
    /// Returns the parse error if the embedded source is malformed (a bug).
    pub fn program(&self) -> Result<Program, ParseError> {
        parse_program(self.source)
    }

    /// The query string for the given input size.
    pub fn query(&self, size: usize) -> String {
        (self.query)(size)
    }

    /// The query string at the paper's default size.
    pub fn default_query(&self) -> String {
        self.query(self.default_size)
    }

    /// The paper's label for this entry, e.g. `fib(15)`.
    pub fn label(&self) -> String {
        format!("{}({})", self.name, self.default_size)
    }
}

fn fib_query(n: usize) -> String {
    format!("fib({n}, Result)")
}

fn hanoi_query(n: usize) -> String {
    format!("hanoi({n}, a, b, c, Moves)")
}

fn quick_sort_query(n: usize) -> String {
    format!("qsort({}, Sorted)", generate::int_list(n, 1000, 7))
}

fn merge_sort_query(n: usize) -> String {
    format!("msort({}, Sorted)", generate::int_list(n, 1000, 11))
}

fn double_sum_query(total: usize) -> String {
    let chunks = (total / 32).max(1);
    format!(
        "double_sum({}, Sum)",
        generate::list_of_lists(total, chunks, 100, 13)
    )
}

fn matrix_query(n: usize) -> String {
    format!(
        "mmult({}, {}, Product)",
        generate::matrix(n, 17),
        generate::matrix(n, 19)
    )
}

fn tree_query(depth: usize) -> String {
    format!("tsum({}, Sum)", generate::full_tree(depth, 23))
}

fn flatten_query(total: usize) -> String {
    let chunks = (total / 4).max(1);
    format!(
        "flat({}, Flat)",
        generate::list_of_lists(total, chunks, 100, 29)
    )
}

fn consistency_query(n: usize) -> String {
    format!("consistent({})", generate::int_list(n, 1000, 31))
}

fn fft_query(n: usize) -> String {
    format!("fft({}, Spectrum)", generate::complex_points(n, 37))
}

fn poly_query(vertices: usize) -> String {
    format!(
        "poly_inclusion({}, {}, Results)",
        generate::points(40, 120, 41),
        generate::polygon(vertices, 100)
    )
}

fn lr1_query(rounds: usize) -> String {
    format!(
        "lr_sets({rounds}, {}, Sets)",
        generate::item_sets(12, 6, 43)
    )
}

fn nrev_query(n: usize) -> String {
    format!("nrev({}, Reversed)", generate::int_list(n, 100, 47))
}

fn cut_search_query(n: usize) -> String {
    // A small value range forces many duplicates, so memb/2's cut commits
    // (and prunes) on most elements.
    format!("dedup({}, Unique)", generate::int_list(n, 25, 53))
}

fn ite_dispatch_query(n: usize) -> String {
    format!(
        "collatz_lens({}, Lens)",
        generate::pos_int_list(n, 5000, 59)
    )
}

/// All benchmarks of the paper's Table 1, in the paper's order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "consistency",
            description: "independent consistency checks over a constraint list",
            source: include_str!("../programs/consistency.pl"),
            default_size: 500,
            query: consistency_query,
            test_size: 40,
        },
        Benchmark {
            name: "fib",
            description: "doubly recursive Fibonacci",
            source: include_str!("../programs/fib.pl"),
            default_size: 15,
            query: fib_query,
            test_size: 10,
        },
        Benchmark {
            name: "hanoi",
            description: "towers of Hanoi producing the move list",
            source: include_str!("../programs/hanoi.pl"),
            default_size: 6,
            query: hanoi_query,
            test_size: 4,
        },
        Benchmark {
            name: "quick_sort",
            description: "quicksort with parallel recursive calls",
            source: include_str!("../programs/quick_sort.pl"),
            default_size: 75,
            query: quick_sort_query,
            test_size: 20,
        },
        Benchmark {
            name: "lr1_set",
            description: "LR(1)-style item-set closure rounds",
            source: include_str!("../programs/lr1_set.pl"),
            default_size: 3,
            query: lr1_query,
            test_size: 1,
        },
        Benchmark {
            name: "double_sum",
            description: "sum of the sums of a list of lists",
            source: include_str!("../programs/double_sum.pl"),
            default_size: 2048,
            query: double_sum_query,
            test_size: 64,
        },
        Benchmark {
            name: "fft",
            description: "radix-2 FFT over complex points",
            source: include_str!("../programs/fft.pl"),
            default_size: 256,
            query: fft_query,
            test_size: 16,
        },
        Benchmark {
            name: "flatten",
            description: "concatenation of many short lists",
            source: include_str!("../programs/flatten.pl"),
            default_size: 536,
            query: flatten_query,
            test_size: 40,
        },
        Benchmark {
            name: "matrix_mult",
            description: "matrix multiplication with row-level parallelism",
            source: include_str!("../programs/matrix_mult.pl"),
            default_size: 8,
            query: matrix_query,
            test_size: 4,
        },
        Benchmark {
            name: "merge_sort",
            description: "merge sort with parallel recursive calls",
            source: include_str!("../programs/merge_sort.pl"),
            default_size: 128,
            query: merge_sort_query,
            test_size: 24,
        },
        Benchmark {
            name: "poly_inclusion",
            description: "point-in-polygon classification",
            source: include_str!("../programs/poly_inclusion.pl"),
            default_size: 30,
            query: poly_query,
            test_size: 8,
        },
        Benchmark {
            name: "tree_traversal",
            description: "binary tree traversal summing the leaves",
            source: include_str!("../programs/tree_traversal.pl"),
            default_size: 8,
            query: tree_query,
            test_size: 4,
        },
    ]
}

/// The `nrev` program of the paper's Appendix A (not part of the tables).
pub fn nrev_benchmark() -> Benchmark {
    Benchmark {
        name: "nrev",
        description: "naive reverse (the Appendix A worked example)",
        source: include_str!("../programs/nrev.pl"),
        default_size: 30,
        query: nrev_query,
        test_size: 10,
    }
}

/// Control-construct benchmarks (not part of the paper's tables): programs
/// dominated by cut-driven pruning and if-then-else dispatch, tracking the
/// engine's compiled-control path in the benchmark snapshot.
pub fn control_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "cut_search",
            description: "list deduplication with cut-committed membership search",
            source: include_str!("../programs/cut_search.pl"),
            default_size: 400,
            query: cut_search_query,
            test_size: 30,
        },
        Benchmark {
            name: "ite_dispatch",
            description: "Collatz trajectory lengths via if-then-else dispatch",
            source: include_str!("../programs/ite_dispatch.pl"),
            default_size: 40,
            query: ite_dispatch_query,
            test_size: 6,
        },
    ]
}

/// The shared attack-graph ruleset (`owned/1`, `reach/1`, `safe/1`,
/// `frontier/1`, `exposed/1` over `host/1`, `link/2`, `vuln/1`, `entry/1`).
///
/// Pure stratified Datalog: the same source runs under SLD resolution and
/// under the bottom-up engine, which is what makes the family a
/// differential oracle. See `programs/attack_graph.pl`.
pub const ATTACK_RULES: &str = include_str!("../programs/attack_graph.pl");

/// A Datalog benchmark: the attack-graph ruleset over a generated topology
/// parameterised by host count.
///
/// Unlike [`Benchmark`], the *program* (not the query) scales with size —
/// bottom-up evaluation is set-at-a-time, so the workload is the fact base.
/// The interesting queries are the fixed open goals of [`Self::queries`].
#[derive(Debug, Clone, Copy)]
pub struct DatalogBenchmark {
    /// Short name (`attack_star`, `attack_chain`, `attack_cut`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Generates the topology's facts for a given host count.
    topology: fn(usize, u64) -> String,
    /// Seed for the topology generator (fixed per family).
    pub seed: u64,
    /// Host count used by the benchmark snapshot (thousands of hosts).
    pub default_size: usize,
    /// Smaller host count suitable for the differential test suite.
    pub test_size: usize,
}

impl DatalogBenchmark {
    /// The full program source at the given host count: the shared ruleset
    /// followed by the generated topology facts.
    pub fn source(&self, size: usize) -> String {
        format!("{ATTACK_RULES}\n{}", (self.topology)(size, self.seed))
    }

    /// Parses the benchmark's program at the given host count.
    ///
    /// # Errors
    ///
    /// Returns the parse error if the generated source is malformed (a bug).
    pub fn program(&self, size: usize) -> Result<Program, ParseError> {
        parse_program(&self.source(size))
    }

    /// The open queries every instance answers — one per IDB predicate.
    pub fn queries() -> &'static [&'static str] {
        &[
            "owned(X)",
            "reach(X)",
            "safe(X)",
            "frontier(X)",
            "exposed(X)",
        ]
    }

    /// The snapshot label, e.g. `attack_chain(2000)`.
    pub fn label(&self) -> String {
        format!("{}({})", self.name, self.default_size)
    }
}

/// The attack-graph benchmark family (kept separate from
/// [`all_benchmarks`], which is pinned to the paper's twelve programs).
pub fn datalog_benchmarks() -> Vec<DatalogBenchmark> {
    vec![
        DatalogBenchmark {
            name: "attack_star",
            description: "hub-and-spoke topology: wide single-round joins",
            topology: generate::attack_star,
            seed: 61,
            default_size: 4000,
            test_size: 48,
        },
        DatalogBenchmark {
            name: "attack_chain",
            description: "line topology: one semi-naive round per hop",
            topology: generate::attack_chain,
            seed: 67,
            default_size: 2000,
            test_size: 48,
        },
        DatalogBenchmark {
            name: "attack_cut",
            description: "two random DAG clusters joined by a sparse cut",
            topology: generate::attack_cut,
            seed: 71,
            default_size: 3000,
            test_size: 64,
        },
    ]
}

/// Looks a Datalog benchmark up by name.
pub fn datalog_benchmark(name: &str) -> Option<DatalogBenchmark> {
    datalog_benchmarks().into_iter().find(|b| b.name == name)
}

/// The small static attack-graph instances shipped next to the ruleset,
/// as `(name, full source)` pairs — handy as fixed CLI/serve examples and
/// as hand-checkable oracle inputs.
pub fn attack_instances() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "attack_star",
            concat!(
                include_str!("../programs/attack_graph.pl"),
                "\n",
                include_str!("../programs/attack_star.pl")
            ),
        ),
        (
            "attack_chain",
            concat!(
                include_str!("../programs/attack_graph.pl"),
                "\n",
                include_str!("../programs/attack_chain.pl")
            ),
        ),
        (
            "attack_cut",
            concat!(
                include_str!("../programs/attack_graph.pl"),
                "\n",
                include_str!("../programs/attack_cut.pl")
            ),
        ),
    ]
}

/// The subset of benchmarks used for the paper's Table 2 (&-Prolog).
pub fn table2_benchmarks() -> Vec<Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| matches!(b.name, "consistency" | "fib" | "hanoi" | "quick_sort"))
        .collect()
}

/// Looks a benchmark up by name (paper tables, `nrev`, and the
/// control-construct extras).
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks()
        .into_iter()
        .chain(std::iter::once(nrev_benchmark()))
        .chain(control_benchmarks())
        .find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_the_paper() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 12);
        let labels: Vec<String> = all.iter().map(Benchmark::label).collect();
        for expected in [
            "consistency(500)",
            "fib(15)",
            "hanoi(6)",
            "quick_sort(75)",
            "lr1_set(3)",
            "double_sum(2048)",
            "fft(256)",
            "flatten(536)",
            "matrix_mult(8)",
            "merge_sort(128)",
            "poly_inclusion(30)",
            "tree_traversal(8)",
        ] {
            assert!(labels.contains(&expected.to_string()), "missing {expected}");
        }
        assert_eq!(table2_benchmarks().len(), 4);
    }

    #[test]
    fn every_program_parses() {
        for b in all_benchmarks()
            .iter()
            .chain(std::iter::once(&nrev_benchmark()))
            .chain(control_benchmarks().iter())
        {
            let program = b.program().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!program.is_empty(), "{} has no clauses", b.name);
        }
    }

    #[test]
    fn control_benchmarks_use_real_control() {
        let extras = control_benchmarks();
        assert_eq!(extras.len(), 2);
        let cut = benchmark("cut_search").unwrap();
        assert!(cut.source.contains('!'), "cut_search must contain cuts");
        let ite = benchmark("ite_dispatch").unwrap();
        assert!(ite.source.contains("->"), "ite_dispatch must use ->");
        for b in &extras {
            assert!(granlog_ir::parser::parse_term(&b.query(b.test_size)).is_ok());
        }
    }

    #[test]
    fn every_query_parses() {
        for b in all_benchmarks() {
            let q = b.query(b.test_size);
            assert!(
                granlog_ir::parser::parse_term(&q).is_ok(),
                "{}: query does not parse: {q}",
                b.name
            );
        }
    }

    #[test]
    fn every_table1_program_contains_parallelism() {
        for b in all_benchmarks() {
            assert!(
                b.source.contains('&'),
                "{} has no parallel conjunction",
                b.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("fib").is_some());
        assert!(benchmark("nrev").is_some());
        assert!(benchmark("does_not_exist").is_none());
    }

    #[test]
    fn datalog_family_generates_parsing_programs() {
        let family = datalog_benchmarks();
        assert_eq!(family.len(), 3);
        for b in &family {
            let program = b
                .program(b.test_size)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!program.is_empty(), "{}", b.name);
            // The source is the shared ruleset plus facts: all five IDB
            // predicates are defined.
            for pred in ["owned", "reach", "safe", "frontier", "exposed"] {
                assert!(
                    program
                        .clauses_of(granlog_ir::PredId::parse(pred, 1))
                        .iter()
                        .any(|c| !c.is_fact()),
                    "{}: missing rule for {pred}/1",
                    b.name
                );
            }
            assert!(b.default_size >= 2000, "{}: family must scale", b.name);
            assert!(datalog_benchmark(b.name).is_some());
        }
        for q in DatalogBenchmark::queries() {
            assert!(granlog_ir::parser::parse_term(q).is_ok(), "{q}");
        }
    }

    #[test]
    fn datalog_generators_are_deterministic() {
        let b = datalog_benchmark("attack_cut").unwrap();
        assert_eq!(b.source(100), b.source(100));
        assert_eq!(b.label(), "attack_cut(3000)");
    }

    #[test]
    fn static_attack_instances_parse_and_embed_the_ruleset() {
        let instances = attack_instances();
        assert_eq!(instances.len(), 3);
        for (name, source) in instances {
            assert!(source.starts_with(ATTACK_RULES), "{name}");
            let program = parse_program(source).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!program.is_empty(), "{name}");
            assert!(source.contains("entry(h0)."), "{name}");
        }
    }
}

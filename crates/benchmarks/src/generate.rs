//! Deterministic workload generators.
//!
//! Every generator is a pure function of its parameters (a small linear
//! congruential generator provides "random" data), so experiment runs are
//! exactly reproducible.

/// A tiny deterministic pseudo-random sequence (LCG, Numerical Recipes
/// constants). Good enough for generating benchmark inputs; not for
/// statistics.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Lcg {
            state: seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407),
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    /// Next value in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A list of `n` pseudo-random integers in `0..bound`, rendered as Prolog
/// list syntax.
pub fn int_list(n: usize, bound: u64, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let items: Vec<String> = (0..n).map(|_| rng.below(bound).to_string()).collect();
    format!("[{}]", items.join(","))
}

/// A list of `n` pseudo-random integers in `1..=bound` (strictly positive —
/// for workloads like Collatz trajectories that are undefined at zero),
/// rendered as Prolog list syntax.
pub fn pos_int_list(n: usize, bound: u64, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let items: Vec<String> = (0..n)
        .map(|_| (rng.below(bound.max(1)) + 1).to_string())
        .collect();
    format!("[{}]", items.join(","))
}

/// A list of `chunks` lists whose lengths sum to `total` (as even as
/// possible), each containing pseudo-random integers.
pub fn list_of_lists(total: usize, chunks: usize, bound: u64, seed: u64) -> String {
    let chunks = chunks.max(1);
    let mut rng = Lcg::new(seed);
    let base = total / chunks;
    let extra = total % chunks;
    let mut out = Vec::with_capacity(chunks);
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        let items: Vec<String> = (0..len).map(|_| rng.below(bound).to_string()).collect();
        out.push(format!("[{}]", items.join(",")));
    }
    format!("[{}]", out.join(","))
}

/// An `n × n` matrix of small integers in Prolog list-of-rows syntax.
pub fn matrix(n: usize, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let rows: Vec<String> = (0..n)
        .map(|_| {
            let row: Vec<String> = (0..n).map(|_| rng.below(10).to_string()).collect();
            format!("[{}]", row.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// A complete binary tree of the given depth with integer leaves, as a
/// `node/2` / `leaf/1` term.
pub fn full_tree(depth: usize, seed: u64) -> String {
    fn go(depth: usize, rng: &mut Lcg) -> String {
        if depth == 0 {
            format!("leaf({})", rng.below(100))
        } else {
            let left = go(depth - 1, rng);
            let right = go(depth - 1, rng);
            format!("node({left},{right})")
        }
    }
    let mut rng = Lcg::new(seed);
    go(depth, &mut rng)
}

/// A list of `n` complex points `c(Re, 0.0)` with pseudo-random real parts.
pub fn complex_points(n: usize, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let items: Vec<String> = (0..n)
        .map(|_| format!("c({}.0,0.0)", rng.below(16)))
        .collect();
    format!("[{}]", items.join(","))
}

/// A convex-ish polygon with `vertices` vertices as a list of `v(X, Y)` terms
/// (a scaled dodecagon-like ring; exact geometry is irrelevant, the benchmark
/// only needs a fixed edge list).
pub fn polygon(vertices: usize, radius: i64) -> String {
    let v: Vec<String> = (0..vertices.max(3))
        .map(|i| {
            let angle = i as f64 / vertices.max(3) as f64 * std::f64::consts::TAU;
            let x = (angle.cos() * radius as f64).round() as i64;
            let y = (angle.sin() * radius as f64).round() as i64;
            format!("v({x},{y})")
        })
        .collect();
    format!("[{}]", v.join(","))
}

/// A list of `n` query points `p(X, Y)` scattered over a square of the given
/// half-width.
pub fn points(n: usize, half_width: u64, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let items: Vec<String> = (0..n)
        .map(|_| {
            let x = rng.below(2 * half_width) as i64 - half_width as i64;
            let y = rng.below(2 * half_width) as i64 - half_width as i64;
            format!("p({x},{y})")
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// A list of `sets` item sets (lists of small integers) for the LR(1)-set
/// benchmark.
pub fn item_sets(sets: usize, items_per_set: usize, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let out: Vec<String> = (0..sets)
        .map(|_| {
            let items: Vec<String> = (0..items_per_set)
                .map(|_| rng.below(97).to_string())
                .collect();
            format!("[{}]", items.join(","))
        })
        .collect();
    format!("[{}]", out.join(","))
}

/// Shared scaffolding for the attack-graph topologies: `host/1` facts for
/// `n` hosts, seeded `vuln/1` facts with the given density (out of 8), and
/// an `entry(h0)` foothold.
fn attack_preamble(n: usize, vuln_in_8: u64, rng: &mut Lcg, out: &mut String) {
    use std::fmt::Write;
    for i in 0..n {
        let _ = writeln!(out, "host(h{i}).");
    }
    for i in 0..n {
        if rng.below(8) < vuln_in_8 {
            let _ = writeln!(out, "vuln(h{i}).");
        }
    }
    out.push_str("entry(h0).\n");
}

/// Star attack-graph topology: hub `h0` links to every spoke, except that
/// roughly one spoke in eight is left off-network (no incoming link), so
/// `safe/1` has answers. Facts only — combine with `attack_graph.pl`.
pub fn attack_star(n: usize, seed: u64) -> String {
    use std::fmt::Write;
    let n = n.max(2);
    let mut rng = Lcg::new(seed);
    let mut out = String::new();
    attack_preamble(n, 4, &mut rng, &mut out);
    for i in 1..n {
        if rng.below(8) != 0 {
            let _ = writeln!(out, "link(h0, h{i}).");
        }
    }
    out
}

/// Chain attack-graph topology: `h0 -> h1 -> ... -> h(n-1)`. Ownership
/// propagates until the first non-vulnerable host breaks the chain, which
/// exercises the deepest fixpoints (one semi-naive round per hop). Facts
/// only — combine with `attack_graph.pl`.
pub fn attack_chain(n: usize, seed: u64) -> String {
    use std::fmt::Write;
    let n = n.max(2);
    let mut rng = Lcg::new(seed);
    let mut out = String::new();
    attack_preamble(n, 6, &mut rng, &mut out);
    for i in 1..n {
        let _ = writeln!(out, "link(h{}, h{i}).", i - 1);
    }
    out
}

/// Random-cut attack-graph topology: two random DAG clusters (left half,
/// right half) joined by a handful of cut edges from the left into the
/// right. Every edge goes from a lower to a higher host index, so the
/// graph is acyclic by construction (which keeps ground SLD queries over
/// the ruleset terminating). Roughly one host in eight gets no incoming
/// link at all, so the `safe/1` stratum has work to do. Facts only —
/// combine with `attack_graph.pl`.
pub fn attack_cut(n: usize, seed: u64) -> String {
    use std::fmt::Write;
    let n = n.max(4);
    let mut rng = Lcg::new(seed);
    let mut out = String::new();
    attack_preamble(n, 4, &mut rng, &mut out);
    let mid = n / 2;
    // Intra-cluster DAG edges: each host (past its cluster's root) picks
    // one or two predecessors among the earlier hosts of its own cluster.
    for (lo, hi) in [(0, mid), (mid, n)] {
        for i in (lo + 1)..hi {
            if rng.below(8) == 0 {
                continue; // isolated host — a `safe/1` candidate
            }
            for _ in 0..=rng.below(2) {
                let pred = lo + rng.below((i - lo) as u64) as usize;
                let _ = writeln!(out, "link(h{pred}, h{i}).");
            }
        }
    }
    // The cut: a few left-to-right edges.
    for _ in 0..(n / 32).max(1) {
        let from = rng.below(mid as u64) as usize;
        let to = mid + rng.below((n - mid) as u64) as usize;
        let _ = writeln!(out, "link(h{from}, h{to}).");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use granlog_ir::parser::parse_term;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(int_list(5, 100, 42), int_list(5, 100, 42));
        assert_ne!(int_list(5, 100, 42), int_list(5, 100, 43));
        assert_eq!(matrix(3, 7), matrix(3, 7));
    }

    #[test]
    fn generated_terms_parse() {
        for src in [
            int_list(10, 100, 1),
            list_of_lists(20, 4, 50, 2),
            matrix(4, 3),
            full_tree(3, 4),
            complex_points(4, 5),
            polygon(12, 100),
            points(5, 50, 6),
            item_sets(3, 4, 7),
        ] {
            let parsed = parse_term(&src);
            assert!(parsed.is_ok(), "failed to parse generated term: {src}");
        }
    }

    #[test]
    fn int_list_has_requested_length() {
        let (t, _) = parse_term(&int_list(17, 10, 9)).unwrap();
        assert_eq!(t.list_length(), Some(17));
        let (t, _) = parse_term(&int_list(0, 10, 9)).unwrap();
        assert_eq!(t.list_length(), Some(0));
    }

    #[test]
    fn list_of_lists_totals_match() {
        let (t, _) = parse_term(&list_of_lists(37, 5, 10, 1)).unwrap();
        let outer = t.as_list().unwrap();
        assert_eq!(outer.len(), 5);
        let total: usize = outer.iter().map(|l| l.list_length().unwrap()).sum();
        assert_eq!(total, 37);
    }

    #[test]
    fn tree_depth_matches() {
        let (t, _) = parse_term(&full_tree(4, 1)).unwrap();
        assert_eq!(t.term_depth(), 4 + 1); // leaf(V) adds one level
    }

    #[test]
    fn polygon_has_requested_vertices() {
        let (t, _) = parse_term(&polygon(30, 100)).unwrap();
        assert_eq!(t.list_length(), Some(30));
    }

    #[test]
    fn lcg_below_respects_bound() {
        let mut rng = Lcg::new(123);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(Lcg::new(1).below(0), 0);
    }

    #[test]
    fn attack_topologies_are_deterministic_facts() {
        for (gen, name) in [
            (attack_star as fn(usize, u64) -> String, "star"),
            (attack_chain, "chain"),
            (attack_cut, "cut"),
        ] {
            assert_eq!(gen(50, 7), gen(50, 7), "{name} not deterministic");
            let program = granlog_ir::parser::parse_program(&gen(50, 7))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            // Facts only: every clause has an empty body.
            assert!(program.clauses().iter().all(|c| c.is_fact()), "{name}");
            assert!(gen(50, 7).contains("entry(h0)."), "{name}");
            assert_eq!(gen(50, 7).matches("host(").count(), 50, "{name}");
        }
    }

    #[test]
    fn attack_chain_links_every_hop() {
        let facts = attack_chain(40, 11);
        assert_eq!(facts.matches("link(").count(), 39);
        assert!(facts.contains("link(h38, h39)."));
    }

    #[test]
    fn attack_cut_is_acyclic() {
        // Every link goes from a lower to a higher host index.
        for line in attack_cut(96, 5).lines() {
            if let Some(rest) = line.strip_prefix("link(h") {
                let (from, rest) = rest.split_once(", h").unwrap();
                let to = rest.strip_suffix(").").unwrap();
                assert!(
                    from.parse::<usize>().unwrap() < to.parse::<usize>().unwrap(),
                    "backward edge: {line}"
                );
            }
        }
    }
}

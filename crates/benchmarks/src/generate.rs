//! Deterministic workload generators.
//!
//! Every generator is a pure function of its parameters (a small linear
//! congruential generator provides "random" data), so experiment runs are
//! exactly reproducible.

/// A tiny deterministic pseudo-random sequence (LCG, Numerical Recipes
/// constants). Good enough for generating benchmark inputs; not for
/// statistics.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Lcg {
            state: seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407),
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    /// Next value in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A list of `n` pseudo-random integers in `0..bound`, rendered as Prolog
/// list syntax.
pub fn int_list(n: usize, bound: u64, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let items: Vec<String> = (0..n).map(|_| rng.below(bound).to_string()).collect();
    format!("[{}]", items.join(","))
}

/// A list of `n` pseudo-random integers in `1..=bound` (strictly positive —
/// for workloads like Collatz trajectories that are undefined at zero),
/// rendered as Prolog list syntax.
pub fn pos_int_list(n: usize, bound: u64, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let items: Vec<String> = (0..n)
        .map(|_| (rng.below(bound.max(1)) + 1).to_string())
        .collect();
    format!("[{}]", items.join(","))
}

/// A list of `chunks` lists whose lengths sum to `total` (as even as
/// possible), each containing pseudo-random integers.
pub fn list_of_lists(total: usize, chunks: usize, bound: u64, seed: u64) -> String {
    let chunks = chunks.max(1);
    let mut rng = Lcg::new(seed);
    let base = total / chunks;
    let extra = total % chunks;
    let mut out = Vec::with_capacity(chunks);
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        let items: Vec<String> = (0..len).map(|_| rng.below(bound).to_string()).collect();
        out.push(format!("[{}]", items.join(",")));
    }
    format!("[{}]", out.join(","))
}

/// An `n × n` matrix of small integers in Prolog list-of-rows syntax.
pub fn matrix(n: usize, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let rows: Vec<String> = (0..n)
        .map(|_| {
            let row: Vec<String> = (0..n).map(|_| rng.below(10).to_string()).collect();
            format!("[{}]", row.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// A complete binary tree of the given depth with integer leaves, as a
/// `node/2` / `leaf/1` term.
pub fn full_tree(depth: usize, seed: u64) -> String {
    fn go(depth: usize, rng: &mut Lcg) -> String {
        if depth == 0 {
            format!("leaf({})", rng.below(100))
        } else {
            let left = go(depth - 1, rng);
            let right = go(depth - 1, rng);
            format!("node({left},{right})")
        }
    }
    let mut rng = Lcg::new(seed);
    go(depth, &mut rng)
}

/// A list of `n` complex points `c(Re, 0.0)` with pseudo-random real parts.
pub fn complex_points(n: usize, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let items: Vec<String> = (0..n)
        .map(|_| format!("c({}.0,0.0)", rng.below(16)))
        .collect();
    format!("[{}]", items.join(","))
}

/// A convex-ish polygon with `vertices` vertices as a list of `v(X, Y)` terms
/// (a scaled dodecagon-like ring; exact geometry is irrelevant, the benchmark
/// only needs a fixed edge list).
pub fn polygon(vertices: usize, radius: i64) -> String {
    let v: Vec<String> = (0..vertices.max(3))
        .map(|i| {
            let angle = i as f64 / vertices.max(3) as f64 * std::f64::consts::TAU;
            let x = (angle.cos() * radius as f64).round() as i64;
            let y = (angle.sin() * radius as f64).round() as i64;
            format!("v({x},{y})")
        })
        .collect();
    format!("[{}]", v.join(","))
}

/// A list of `n` query points `p(X, Y)` scattered over a square of the given
/// half-width.
pub fn points(n: usize, half_width: u64, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let items: Vec<String> = (0..n)
        .map(|_| {
            let x = rng.below(2 * half_width) as i64 - half_width as i64;
            let y = rng.below(2 * half_width) as i64 - half_width as i64;
            format!("p({x},{y})")
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// A list of `sets` item sets (lists of small integers) for the LR(1)-set
/// benchmark.
pub fn item_sets(sets: usize, items_per_set: usize, seed: u64) -> String {
    let mut rng = Lcg::new(seed);
    let out: Vec<String> = (0..sets)
        .map(|_| {
            let items: Vec<String> = (0..items_per_set)
                .map(|_| rng.below(97).to_string())
                .collect();
            format!("[{}]", items.join(","))
        })
        .collect();
    format!("[{}]", out.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use granlog_ir::parser::parse_term;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(int_list(5, 100, 42), int_list(5, 100, 42));
        assert_ne!(int_list(5, 100, 42), int_list(5, 100, 43));
        assert_eq!(matrix(3, 7), matrix(3, 7));
    }

    #[test]
    fn generated_terms_parse() {
        for src in [
            int_list(10, 100, 1),
            list_of_lists(20, 4, 50, 2),
            matrix(4, 3),
            full_tree(3, 4),
            complex_points(4, 5),
            polygon(12, 100),
            points(5, 50, 6),
            item_sets(3, 4, 7),
        ] {
            let parsed = parse_term(&src);
            assert!(parsed.is_ok(), "failed to parse generated term: {src}");
        }
    }

    #[test]
    fn int_list_has_requested_length() {
        let (t, _) = parse_term(&int_list(17, 10, 9)).unwrap();
        assert_eq!(t.list_length(), Some(17));
        let (t, _) = parse_term(&int_list(0, 10, 9)).unwrap();
        assert_eq!(t.list_length(), Some(0));
    }

    #[test]
    fn list_of_lists_totals_match() {
        let (t, _) = parse_term(&list_of_lists(37, 5, 10, 1)).unwrap();
        let outer = t.as_list().unwrap();
        assert_eq!(outer.len(), 5);
        let total: usize = outer.iter().map(|l| l.list_length().unwrap()).sum();
        assert_eq!(total, 37);
    }

    #[test]
    fn tree_depth_matches() {
        let (t, _) = parse_term(&full_tree(4, 1)).unwrap();
        assert_eq!(t.term_depth(), 4 + 1); // leaf(V) adds one level
    }

    #[test]
    fn polygon_has_requested_vertices() {
        let (t, _) = parse_term(&polygon(30, 100)).unwrap();
        assert_eq!(t.list_length(), Some(30));
    }

    #[test]
    fn lcg_below_respects_bound() {
        let mut rng = Lcg::new(123);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(Lcg::new(1).below(0), 0);
    }
}

//! A scripted client for the serve protocol, used by the integration
//! tests, the CI smoke job and `bench_serve`. One blocking call per
//! protocol command; replies are parsed into typed results.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Parsed reply to a `query` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReply {
    /// Whether the goal succeeded.
    pub succeeded: bool,
    /// `(name, rendered term)` binding lines, in reply order.
    pub bindings: Vec<(String, String)>,
    /// Head attempts the server reported.
    pub steps: u64,
    /// Arena high-water mark the server reported, in cells.
    pub heap_high_water: u64,
    /// Preemptible slices the query ran in.
    pub slices: u64,
}

/// A connection to a running serve instance.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connects and consumes the greeting line.
    ///
    /// # Errors
    ///
    /// Connection failures, or a malformed greeting.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?; // commands are single small writes
        let mut reader = BufReader::new(writer.try_clone()?);
        let mut greeting = String::new();
        reader.read_line(&mut greeting)?;
        if !greeting.starts_with("ok granlog-serve") {
            return Err(protocol_err(format!("unexpected greeting: {greeting:?}")));
        }
        Ok(ServeClient { reader, writer })
    }

    /// Uploads program text. Returns `(program hash, clause count,
    /// cache hit)` on success, the server's error message otherwise.
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn load(&mut self, source: &str) -> io::Result<Result<(String, u64, bool), String>> {
        write!(self.writer, "load {}\n{}", source.len(), source)?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if let Some(err) = line.strip_prefix("err ") {
            return Ok(Err(err.to_string()));
        }
        let fields = parse_fields(&line, "ok")?;
        Ok(Ok((
            field(&fields, "program")?.to_string(),
            field(&fields, "clauses")?
                .parse()
                .map_err(|_| protocol_err(format!("bad clause count in {line:?}")))?,
            field(&fields, "cache")? == "hit",
        )))
    }

    /// Runs a goal. Returns the parsed reply on success, the server's error
    /// message (e.g. a budget violation) otherwise.
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn query(&mut self, goal: &str) -> io::Result<Result<ClientReply, String>> {
        writeln!(self.writer, "query {goal}")?;
        self.writer.flush()?;
        let mut bindings = Vec::new();
        loop {
            let line = self.read_line()?;
            if let Some(bind) = line.strip_prefix("bind ") {
                let (name, term) = bind
                    .split_once(" = ")
                    .ok_or_else(|| protocol_err(format!("bad bind line: {line:?}")))?;
                bindings.push((name.to_string(), term.to_string()));
            } else if let Some(err) = line.strip_prefix("err ") {
                return Ok(Err(err.to_string()));
            } else if let Some(done) = line.strip_prefix("done ") {
                let (status, rest) = done
                    .split_once(' ')
                    .ok_or_else(|| protocol_err(format!("bad done line: {line:?}")))?;
                let fields = parse_fields(rest, "")?;
                let num = |key: &str| -> io::Result<u64> {
                    field(&fields, key)?
                        .parse()
                        .map_err(|_| protocol_err(format!("bad {key} in {line:?}")))
                };
                return Ok(Ok(ClientReply {
                    succeeded: status == "ok",
                    bindings,
                    steps: num("steps")?,
                    heap_high_water: num("heap")?,
                    slices: num("slices")?,
                }));
            } else {
                return Err(protocol_err(format!("unexpected reply line: {line:?}")));
            }
        }
    }

    /// Sets the session step budget (`None` = unlimited).
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side rejection.
    pub fn budget_steps(&mut self, steps: Option<u64>) -> io::Result<()> {
        match steps {
            Some(n) => self.simple_command(&format!("budget steps {n}")),
            None => self.simple_command("budget steps off"),
        }
    }

    /// Sets the session heap budget in cells (`None` = unlimited).
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side rejection.
    pub fn budget_heap(&mut self, cells: Option<u64>) -> io::Result<()> {
        match cells {
            Some(n) => self.simple_command(&format!("budget heap {n}")),
            None => self.simple_command("budget heap off"),
        }
    }

    /// Sets the preemption quantum in steps.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side rejection.
    pub fn budget_quantum(&mut self, steps: u64) -> io::Result<()> {
        self.simple_command(&format!("budget quantum {steps}"))
    }

    /// Fetches server stats as `(hits, misses, evictions, entries,
    /// sessions)`.
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn stats(&mut self) -> io::Result<(u64, u64, u64, u64, u64)> {
        writeln!(self.writer, "stats")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        let fields = parse_fields(&line, "ok")?;
        let num = |key: &str| -> io::Result<u64> {
            field(&fields, key)?
                .parse()
                .map_err(|_| protocol_err(format!("bad {key} in {line:?}")))
        };
        Ok((
            num("hits")?,
            num("misses")?,
            num("evictions")?,
            num("entries")?,
            num("sessions")?,
        ))
    }

    /// Ends the session politely.
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed farewell.
    pub fn quit(mut self) -> io::Result<()> {
        writeln!(self.writer, "quit")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if line.starts_with("ok") {
            Ok(())
        } else {
            Err(protocol_err(format!("unexpected farewell: {line:?}")))
        }
    }

    /// Asks the server to stop accepting connections, then disconnects.
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed acknowledgement.
    pub fn shutdown_server(mut self) -> io::Result<()> {
        writeln!(self.writer, "shutdown")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if line.starts_with("ok") {
            Ok(())
        } else {
            Err(protocol_err(format!("unexpected shutdown ack: {line:?}")))
        }
    }

    fn simple_command(&mut self, cmd: &str) -> io::Result<()> {
        writeln!(self.writer, "{cmd}")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if line.starts_with("ok") {
            Ok(())
        } else {
            Err(protocol_err(format!("server rejected `{cmd}`: {line:?}")))
        }
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }
}

fn protocol_err(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Splits `key=value` fields after an optional leading status word.
fn parse_fields<'a>(line: &'a str, expect: &str) -> io::Result<Vec<(&'a str, &'a str)>> {
    let rest = if expect.is_empty() {
        line
    } else {
        line.strip_prefix(expect)
            .ok_or_else(|| protocol_err(format!("expected `{expect} ...`, got {line:?}")))?
    };
    Ok(rest
        .split_whitespace()
        .filter_map(|f| f.split_once('='))
        .collect())
}

fn field<'a>(fields: &[(&'a str, &'a str)], key: &str) -> io::Result<&'a str> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| protocol_err(format!("missing field `{key}`")))
}

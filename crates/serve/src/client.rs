//! A scripted client for the serve protocol, used by the integration
//! tests, the CI smoke job and `bench_serve`. One blocking call per
//! protocol command; replies are parsed into typed results.

use crate::session::DatalogReplyStats;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Parsed reply to a `query` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReply {
    /// Whether the goal succeeded.
    pub succeeded: bool,
    /// `(name, rendered term)` binding lines, in reply order. Under the
    /// bottom-up engine there is one `bind` line per variable per answer,
    /// so names repeat once per answer.
    pub bindings: Vec<(String, String)>,
    /// Head attempts the server reported.
    pub steps: u64,
    /// Arena high-water mark the server reported, in cells.
    pub heap_high_water: u64,
    /// Preemptible slices the query ran in.
    pub slices: u64,
    /// Fixpoint statistics (`answers=`/`rounds=`/`facts=` fields) when the
    /// bottom-up engine answered; `None` for SLD replies.
    pub datalog: Option<DatalogReplyStats>,
}

/// Parsed reply to a `stats` command: cache counters plus the server's
/// session and fault-isolation gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Cache loads answered by an existing entry.
    pub hits: u64,
    /// Cache loads that compiled a new entry.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Connections currently being served.
    pub sessions: u64,
    /// Machines quarantined after a panic or injected fault.
    pub quarantined: u64,
    /// Machines retired by the arena high-water policy.
    pub retired: u64,
    /// Machine leases currently checked out — 0 on a quiescent server; a
    /// stuck positive value means a lease leaked.
    pub lease_leaked: u64,
    /// Connections shed at the acceptor because the server was at its
    /// connection cap.
    pub shed: u64,
    /// Programs replayed from the durable store at boot (0 when the server
    /// runs without a store).
    pub recovered: u64,
    /// Programs currently in the durable store.
    pub stored: u64,
    /// Bytes of valid records in the server's WAL.
    pub wal_bytes: u64,
    /// Valid records in the server's WAL.
    pub wal_records: u64,
    /// WAL appends not yet fsynced.
    pub unsynced: u64,
    /// Age of the server's snapshot file in ms (0 = none or just written).
    pub snapshot_age_ms: u64,
    /// Time since the server's last WAL fsync in ms (0 = never or just now).
    pub last_fsync_ms: u64,
    /// Milliseconds the server has been up.
    pub uptime_ms: u64,
    /// The server's build version (`version=` field; empty from a server
    /// predating the field).
    pub version: String,
    /// Every `key=value` field this client did not recognize, in reply
    /// order. A server newer than this client surfaces its additions here
    /// instead of dropping them silently.
    pub extra: Vec<(String, String)>,
}

/// A connection to a running serve instance.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connects and consumes the greeting line.
    ///
    /// # Errors
    ///
    /// Connection failures, or a malformed greeting. A server at its
    /// connection cap refuses with `err overloaded ...`, surfaced as
    /// [`io::ErrorKind::ConnectionRefused`] so callers (and
    /// [`ServeClient::connect_with_retry`]) can treat it as retryable.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?; // commands are single small writes
        let mut reader = BufReader::new(writer.try_clone()?);
        let mut greeting = String::new();
        reader.read_line(&mut greeting)?;
        if let Some(refusal) = greeting.strip_prefix("err overloaded") {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("server shed this connection:{}", refusal.trim_end()),
            ));
        }
        if !greeting.starts_with("ok granlog-serve") {
            return Err(protocol_err(format!("unexpected greeting: {greeting:?}")));
        }
        Ok(ServeClient { reader, writer })
    }

    /// [`ServeClient::connect`] with bounded retry: on a refused connection
    /// (TCP refusal or an `err overloaded` shed) sleeps and tries again, up
    /// to `attempts` total attempts.
    ///
    /// The sleep follows *decorrelated jitter*: each wait is drawn uniformly
    /// from `[backoff, prev * 3]`, capped at `backoff * 64`. A shed is by
    /// definition a moment when many clients hit the server at once;
    /// deterministic doubling would march the whole cohort back in
    /// lock-step waves, while jitter spreads the retries out.
    ///
    /// # Errors
    ///
    /// The last attempt's error once the budget is exhausted, or
    /// immediately for errors that are not refusals.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        attempts: u32,
        backoff: std::time::Duration,
    ) -> io::Result<ServeClient> {
        let base = backoff.max(std::time::Duration::from_micros(1));
        let cap = base.saturating_mul(64);
        let mut rng = splitmix_seed();
        let mut prev = base;
        let mut tries = 0;
        loop {
            tries += 1;
            match ServeClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused && tries < attempts => {
                    let ceiling = prev.saturating_mul(3).min(cap);
                    prev = uniform_between(&mut rng, base, ceiling);
                    std::thread::sleep(prev);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Uploads program text. Returns `(program hash, clause count,
    /// cache hit)` on success, the server's error message otherwise.
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn load(&mut self, source: &str) -> io::Result<Result<(String, u64, bool), String>> {
        write!(self.writer, "load {}\n{}", source.len(), source)?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if let Some(err) = line.strip_prefix("err ") {
            return Ok(Err(err.to_string()));
        }
        let fields = parse_fields(&line, "ok")?;
        Ok(Ok((
            field(&fields, "program")?.to_string(),
            field(&fields, "clauses")?
                .parse()
                .map_err(|_| protocol_err(format!("bad clause count in {line:?}")))?,
            field(&fields, "cache")? == "hit",
        )))
    }

    /// Runs a goal. Returns the parsed reply on success, the server's error
    /// message (e.g. a budget violation) otherwise.
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn query(&mut self, goal: &str) -> io::Result<Result<ClientReply, String>> {
        writeln!(self.writer, "query {goal}")?;
        self.writer.flush()?;
        let mut bindings = Vec::new();
        loop {
            let line = self.read_line()?;
            if let Some(bind) = line.strip_prefix("bind ") {
                let (name, term) = bind
                    .split_once(" = ")
                    .ok_or_else(|| protocol_err(format!("bad bind line: {line:?}")))?;
                bindings.push((name.to_string(), term.to_string()));
            } else if let Some(err) = line.strip_prefix("err ") {
                return Ok(Err(err.to_string()));
            } else if let Some(done) = line.strip_prefix("done ") {
                let (status, rest) = done
                    .split_once(' ')
                    .ok_or_else(|| protocol_err(format!("bad done line: {line:?}")))?;
                let fields = parse_fields(rest, "")?;
                let num = |key: &str| -> io::Result<u64> {
                    field(&fields, key)?
                        .parse()
                        .map_err(|_| protocol_err(format!("bad {key} in {line:?}")))
                };
                let datalog = if fields.iter().any(|(k, _)| *k == "answers") {
                    Some(DatalogReplyStats {
                        answers: num("answers")?,
                        rounds: num("rounds")?,
                        facts: num("facts")?,
                    })
                } else {
                    None
                };
                return Ok(Ok(ClientReply {
                    succeeded: status == "ok",
                    bindings,
                    steps: num("steps")?,
                    heap_high_water: num("heap")?,
                    slices: num("slices")?,
                    datalog,
                }));
            } else {
                return Err(protocol_err(format!("unexpected reply line: {line:?}")));
            }
        }
    }

    /// Sets the session step budget (`None` = unlimited).
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side rejection.
    pub fn budget_steps(&mut self, steps: Option<u64>) -> io::Result<()> {
        match steps {
            Some(n) => self.simple_command(&format!("budget steps {n}")),
            None => self.simple_command("budget steps off"),
        }
    }

    /// Sets the session heap budget in cells (`None` = unlimited).
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side rejection.
    pub fn budget_heap(&mut self, cells: Option<u64>) -> io::Result<()> {
        match cells {
            Some(n) => self.simple_command(&format!("budget heap {n}")),
            None => self.simple_command("budget heap off"),
        }
    }

    /// Sets the session wall-clock budget in milliseconds (`None` =
    /// unlimited).
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side rejection.
    pub fn budget_wall(&mut self, ms: Option<u64>) -> io::Result<()> {
        match ms {
            Some(n) => self.simple_command(&format!("budget wall {n}")),
            None => self.simple_command("budget wall off"),
        }
    }

    /// Sets the preemption quantum in steps.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side rejection.
    pub fn budget_quantum(&mut self, steps: u64) -> io::Result<()> {
        self.simple_command(&format!("budget quantum {steps}"))
    }

    /// Selects the evaluation engine for subsequent queries (`"sld"` or
    /// `"bottom-up"`). Returns the server's error message if it rejects the
    /// name.
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn engine(&mut self, name: &str) -> io::Result<Result<(), String>> {
        writeln!(self.writer, "engine {name}")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if let Some(err) = line.strip_prefix("err ") {
            return Ok(Err(err.to_string()));
        }
        if line.starts_with("ok") {
            Ok(Ok(()))
        } else {
            Err(protocol_err(format!("unexpected engine ack: {line:?}")))
        }
    }

    /// Fetches server stats: cache counters, live session count and the
    /// fault-isolation gauges.
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        writeln!(self.writer, "stats")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        let fields = parse_fields(&line, "ok")?;
        let num = |key: &str| -> io::Result<u64> {
            field(&fields, key)?
                .parse()
                .map_err(|_| protocol_err(format!("bad {key} in {line:?}")))
        };
        // Durability fields only appear when the server runs with a store;
        // their absence reads as 0 so this client speaks to both.
        let num_or = |key: &str| -> io::Result<u64> {
            match field(&fields, key) {
                Ok(v) => v
                    .parse()
                    .map_err(|_| protocol_err(format!("bad {key} in {line:?}"))),
                Err(_) => Ok(0),
            }
        };
        const KNOWN: &[&str] = &[
            "hits",
            "misses",
            "evictions",
            "entries",
            "sessions",
            "quarantined",
            "retired",
            "leases",
            "shed",
            "recovered",
            "stored",
            "wal_bytes",
            "wal_records",
            "unsynced",
            "snapshot_age_ms",
            "last_fsync_ms",
            "uptime_ms",
            "version",
        ];
        Ok(ServerStats {
            hits: num("hits")?,
            misses: num("misses")?,
            evictions: num("evictions")?,
            entries: num("entries")?,
            sessions: num("sessions")?,
            quarantined: num("quarantined")?,
            retired: num("retired")?,
            lease_leaked: num("leases")?,
            shed: num("shed")?,
            recovered: num_or("recovered")?,
            stored: num_or("stored")?,
            wal_bytes: num_or("wal_bytes")?,
            wal_records: num_or("wal_records")?,
            unsynced: num_or("unsynced")?,
            snapshot_age_ms: num_or("snapshot_age_ms")?,
            last_fsync_ms: num_or("last_fsync_ms")?,
            uptime_ms: num_or("uptime_ms")?,
            version: field(&fields, "version").map_or_else(|_| String::new(), str::to_string),
            extra: fields
                .iter()
                .filter(|(k, _)| !KNOWN.contains(k))
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        })
    }

    /// Fetches the server's Prometheus text exposition (the `metrics`
    /// command's byte-counted body).
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn metrics(&mut self) -> io::Result<String> {
        writeln!(self.writer, "metrics")?;
        self.writer.flush()?;
        self.read_counted_body()
    }

    /// Toggles the server-global trace ring.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side rejection.
    pub fn trace(&mut self, on: bool) -> io::Result<()> {
        self.simple_command(if on { "trace on" } else { "trace off" })
    }

    /// Drains the server's trace ring as JSONL (possibly empty).
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn trace_dump(&mut self) -> io::Result<String> {
        writeln!(self.writer, "trace dump")?;
        self.writer.flush()?;
        self.read_counted_body()
    }

    /// Reads an `ok <nbytes>` header then exactly that many body bytes.
    fn read_counted_body(&mut self) -> io::Result<String> {
        let line = self.read_line()?;
        if let Some(err) = line.strip_prefix("err ") {
            return Err(protocol_err(format!("server refused: {err}")));
        }
        let nbytes: usize = line
            .strip_prefix("ok ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| protocol_err(format!("expected `ok <nbytes>`, got {line:?}")))?;
        let mut body = vec![0u8; nbytes];
        io::Read::read_exact(&mut self.reader, &mut body)?;
        String::from_utf8(body).map_err(|_| protocol_err("body is not valid utf-8".to_string()))
    }

    /// Sends a full `query` command, flushes it, then drops the connection
    /// without reading the reply — a client that died mid-query. Chaos-test
    /// helper: the server must finish the abandoned query, return its
    /// machine lease and reap the session.
    ///
    /// # Errors
    ///
    /// I/O failures writing the doomed command.
    pub fn kill_after_query(mut self, goal: &str) -> io::Result<()> {
        writeln!(self.writer, "query {goal}")?;
        self.writer.flush()
    }

    /// Writes a partial command — no trailing newline — then drops the
    /// connection, leaving a torn frame on the wire. Chaos-test helper: the
    /// server must detect the cut (EOF or torn-frame timeout) and reap the
    /// session without leaking anything.
    ///
    /// # Errors
    ///
    /// I/O failures writing the fragment.
    pub fn kill_mid_command(mut self, partial: &str) -> io::Result<()> {
        write!(self.writer, "{partial}")?;
        self.writer.flush()
    }

    /// Ends the session politely.
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed farewell.
    pub fn quit(mut self) -> io::Result<()> {
        writeln!(self.writer, "quit")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if line.starts_with("ok") {
            Ok(())
        } else {
            Err(protocol_err(format!("unexpected farewell: {line:?}")))
        }
    }

    /// Asks the server to stop accepting connections, then disconnects.
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed acknowledgement.
    pub fn shutdown_server(mut self) -> io::Result<()> {
        writeln!(self.writer, "shutdown")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if line.starts_with("ok") {
            Ok(())
        } else {
            Err(protocol_err(format!("unexpected shutdown ack: {line:?}")))
        }
    }

    fn simple_command(&mut self, cmd: &str) -> io::Result<()> {
        writeln!(self.writer, "{cmd}")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if line.starts_with("ok") {
            Ok(())
        } else {
            Err(protocol_err(format!("server rejected `{cmd}`: {line:?}")))
        }
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }
}

fn protocol_err(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// A per-call splitmix64 state seeded from [`std::collections::hash_map::RandomState`]
/// (the stdlib's per-process random keys), so concurrent clients draw
/// different jitter without this crate growing an RNG dependency.
fn splitmix_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    hasher.write_u64(0x9e37_79b9_7f4a_7c15);
    hasher.finish()
}

fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A duration drawn uniformly from `[lo, hi]` (microsecond granularity).
fn uniform_between(
    rng: &mut u64,
    lo: std::time::Duration,
    hi: std::time::Duration,
) -> std::time::Duration {
    let lo_us = lo.as_micros() as u64;
    let hi_us = (hi.as_micros() as u64).max(lo_us);
    let span = hi_us - lo_us + 1;
    std::time::Duration::from_micros(lo_us + splitmix_next(rng) % span)
}

/// Splits `key=value` fields after an optional leading status word.
fn parse_fields<'a>(line: &'a str, expect: &str) -> io::Result<Vec<(&'a str, &'a str)>> {
    let rest = if expect.is_empty() {
        line
    } else {
        line.strip_prefix(expect)
            .ok_or_else(|| protocol_err(format!("expected `{expect} ...`, got {line:?}")))?
    };
    Ok(rest
        .split_whitespace()
        .filter_map(|f| f.split_once('='))
        .collect())
}

fn field<'a>(fields: &[(&'a str, &'a str)], key: &str) -> io::Result<&'a str> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| protocol_err(format!("missing field `{key}`")))
}

//! A scripted client for the serve protocol, used by the integration
//! tests, the CI smoke job and `bench_serve`. One blocking call per
//! protocol command; replies are parsed into typed results.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Parsed reply to a `query` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReply {
    /// Whether the goal succeeded.
    pub succeeded: bool,
    /// `(name, rendered term)` binding lines, in reply order.
    pub bindings: Vec<(String, String)>,
    /// Head attempts the server reported.
    pub steps: u64,
    /// Arena high-water mark the server reported, in cells.
    pub heap_high_water: u64,
    /// Preemptible slices the query ran in.
    pub slices: u64,
}

/// Parsed reply to a `stats` command: cache counters plus the server's
/// session and fault-isolation gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Cache loads answered by an existing entry.
    pub hits: u64,
    /// Cache loads that compiled a new entry.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Connections currently being served.
    pub sessions: u64,
    /// Machines quarantined after a panic or injected fault.
    pub quarantined: u64,
    /// Machines retired by the arena high-water policy.
    pub retired: u64,
    /// Machine leases currently checked out — 0 on a quiescent server; a
    /// stuck positive value means a lease leaked.
    pub lease_leaked: u64,
    /// Connections shed at the acceptor because the server was at its
    /// connection cap.
    pub shed: u64,
}

/// A connection to a running serve instance.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connects and consumes the greeting line.
    ///
    /// # Errors
    ///
    /// Connection failures, or a malformed greeting. A server at its
    /// connection cap refuses with `err overloaded ...`, surfaced as
    /// [`io::ErrorKind::ConnectionRefused`] so callers (and
    /// [`ServeClient::connect_with_retry`]) can treat it as retryable.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?; // commands are single small writes
        let mut reader = BufReader::new(writer.try_clone()?);
        let mut greeting = String::new();
        reader.read_line(&mut greeting)?;
        if let Some(refusal) = greeting.strip_prefix("err overloaded") {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("server shed this connection:{}", refusal.trim_end()),
            ));
        }
        if !greeting.starts_with("ok granlog-serve") {
            return Err(protocol_err(format!("unexpected greeting: {greeting:?}")));
        }
        Ok(ServeClient { reader, writer })
    }

    /// [`ServeClient::connect`] with bounded retry: on a refused connection
    /// (TCP refusal or an `err overloaded` shed) sleeps `backoff`, doubles
    /// it, and tries again, up to `attempts` total attempts.
    ///
    /// # Errors
    ///
    /// The last attempt's error once the budget is exhausted, or
    /// immediately for errors that are not refusals.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        attempts: u32,
        mut backoff: std::time::Duration,
    ) -> io::Result<ServeClient> {
        let mut tries = 0;
        loop {
            tries += 1;
            match ServeClient::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused && tries < attempts => {
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Uploads program text. Returns `(program hash, clause count,
    /// cache hit)` on success, the server's error message otherwise.
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn load(&mut self, source: &str) -> io::Result<Result<(String, u64, bool), String>> {
        write!(self.writer, "load {}\n{}", source.len(), source)?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if let Some(err) = line.strip_prefix("err ") {
            return Ok(Err(err.to_string()));
        }
        let fields = parse_fields(&line, "ok")?;
        Ok(Ok((
            field(&fields, "program")?.to_string(),
            field(&fields, "clauses")?
                .parse()
                .map_err(|_| protocol_err(format!("bad clause count in {line:?}")))?,
            field(&fields, "cache")? == "hit",
        )))
    }

    /// Runs a goal. Returns the parsed reply on success, the server's error
    /// message (e.g. a budget violation) otherwise.
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn query(&mut self, goal: &str) -> io::Result<Result<ClientReply, String>> {
        writeln!(self.writer, "query {goal}")?;
        self.writer.flush()?;
        let mut bindings = Vec::new();
        loop {
            let line = self.read_line()?;
            if let Some(bind) = line.strip_prefix("bind ") {
                let (name, term) = bind
                    .split_once(" = ")
                    .ok_or_else(|| protocol_err(format!("bad bind line: {line:?}")))?;
                bindings.push((name.to_string(), term.to_string()));
            } else if let Some(err) = line.strip_prefix("err ") {
                return Ok(Err(err.to_string()));
            } else if let Some(done) = line.strip_prefix("done ") {
                let (status, rest) = done
                    .split_once(' ')
                    .ok_or_else(|| protocol_err(format!("bad done line: {line:?}")))?;
                let fields = parse_fields(rest, "")?;
                let num = |key: &str| -> io::Result<u64> {
                    field(&fields, key)?
                        .parse()
                        .map_err(|_| protocol_err(format!("bad {key} in {line:?}")))
                };
                return Ok(Ok(ClientReply {
                    succeeded: status == "ok",
                    bindings,
                    steps: num("steps")?,
                    heap_high_water: num("heap")?,
                    slices: num("slices")?,
                }));
            } else {
                return Err(protocol_err(format!("unexpected reply line: {line:?}")));
            }
        }
    }

    /// Sets the session step budget (`None` = unlimited).
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side rejection.
    pub fn budget_steps(&mut self, steps: Option<u64>) -> io::Result<()> {
        match steps {
            Some(n) => self.simple_command(&format!("budget steps {n}")),
            None => self.simple_command("budget steps off"),
        }
    }

    /// Sets the session heap budget in cells (`None` = unlimited).
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side rejection.
    pub fn budget_heap(&mut self, cells: Option<u64>) -> io::Result<()> {
        match cells {
            Some(n) => self.simple_command(&format!("budget heap {n}")),
            None => self.simple_command("budget heap off"),
        }
    }

    /// Sets the preemption quantum in steps.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side rejection.
    pub fn budget_quantum(&mut self, steps: u64) -> io::Result<()> {
        self.simple_command(&format!("budget quantum {steps}"))
    }

    /// Fetches server stats: cache counters, live session count and the
    /// fault-isolation gauges.
    ///
    /// # Errors
    ///
    /// I/O failures, or a reply that does not follow the protocol.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        writeln!(self.writer, "stats")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        let fields = parse_fields(&line, "ok")?;
        let num = |key: &str| -> io::Result<u64> {
            field(&fields, key)?
                .parse()
                .map_err(|_| protocol_err(format!("bad {key} in {line:?}")))
        };
        Ok(ServerStats {
            hits: num("hits")?,
            misses: num("misses")?,
            evictions: num("evictions")?,
            entries: num("entries")?,
            sessions: num("sessions")?,
            quarantined: num("quarantined")?,
            retired: num("retired")?,
            lease_leaked: num("leases")?,
            shed: num("shed")?,
        })
    }

    /// Sends a full `query` command, flushes it, then drops the connection
    /// without reading the reply — a client that died mid-query. Chaos-test
    /// helper: the server must finish the abandoned query, return its
    /// machine lease and reap the session.
    ///
    /// # Errors
    ///
    /// I/O failures writing the doomed command.
    pub fn kill_after_query(mut self, goal: &str) -> io::Result<()> {
        writeln!(self.writer, "query {goal}")?;
        self.writer.flush()
    }

    /// Writes a partial command — no trailing newline — then drops the
    /// connection, leaving a torn frame on the wire. Chaos-test helper: the
    /// server must detect the cut (EOF or torn-frame timeout) and reap the
    /// session without leaking anything.
    ///
    /// # Errors
    ///
    /// I/O failures writing the fragment.
    pub fn kill_mid_command(mut self, partial: &str) -> io::Result<()> {
        write!(self.writer, "{partial}")?;
        self.writer.flush()
    }

    /// Ends the session politely.
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed farewell.
    pub fn quit(mut self) -> io::Result<()> {
        writeln!(self.writer, "quit")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if line.starts_with("ok") {
            Ok(())
        } else {
            Err(protocol_err(format!("unexpected farewell: {line:?}")))
        }
    }

    /// Asks the server to stop accepting connections, then disconnects.
    ///
    /// # Errors
    ///
    /// I/O failures or a malformed acknowledgement.
    pub fn shutdown_server(mut self) -> io::Result<()> {
        writeln!(self.writer, "shutdown")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if line.starts_with("ok") {
            Ok(())
        } else {
            Err(protocol_err(format!("unexpected shutdown ack: {line:?}")))
        }
    }

    fn simple_command(&mut self, cmd: &str) -> io::Result<()> {
        writeln!(self.writer, "{cmd}")?;
        self.writer.flush()?;
        let line = self.read_line()?;
        if line.starts_with("ok") {
            Ok(())
        } else {
            Err(protocol_err(format!("server rejected `{cmd}`: {line:?}")))
        }
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }
}

fn protocol_err(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Splits `key=value` fields after an optional leading status word.
fn parse_fields<'a>(line: &'a str, expect: &str) -> io::Result<Vec<(&'a str, &'a str)>> {
    let rest = if expect.is_empty() {
        line
    } else {
        line.strip_prefix(expect)
            .ok_or_else(|| protocol_err(format!("expected `{expect} ...`, got {line:?}")))?
    };
    Ok(rest
        .split_whitespace()
        .filter_map(|f| f.split_once('='))
        .collect())
}

fn field<'a>(fields: &[(&'a str, &'a str)], key: &str) -> io::Result<&'a str> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| protocol_err(format!("missing field `{key}`")))
}

//! The shared compiled-template cache and per-program warm machine pools.
//!
//! Tenants upload program *text*; the cache parses it, **normalizes** it
//! (canonical clause/directive printing — whitespace, comments and variable
//! spelling disappear) and keys the entry by the full normalized text. Two
//! tenants uploading the same program — however differently formatted —
//! share one [`ProgramEntry`]: one parse, one template compilation, one
//! machine pool. A modified program normalizes differently and *cannot* get
//! a stale entry, because the key is the program's entire content, not a
//! file path, an mtime, or a truncated digest (the 64-bit FNV hash exposed
//! as [`ProgramEntry::hash`] is a display id, never the lookup key).
//!
//! Machines are recycled through a bounded per-entry free-list. A machine
//! whose last query pushed its arena high-water mark past the pool's
//! retirement threshold is dropped instead of pooled, returning its arena
//! to the allocator — the pool stays warm without slowly accreting the
//! largest arena any tenant ever needed.

use granlog_engine::{ClauseTemplate, Machine, MachineConfig};
use granlog_ir::parser::{parse_program, ParseError};
use granlog_ir::Program;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Machine-pool policy of one cache (applied per program entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Maximum machines kept warm per program entry.
    pub max_pooled: usize,
    /// Retirement threshold: a machine whose last query's arena high-water
    /// mark exceeds this many cells is dropped instead of pooled.
    pub retire_heap_cells: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_pooled: 16,
            // 1M cells ≈ 16 MiB of arena: plenty for every benchmark
            // program at default sizes, small enough that one outlier query
            // cannot park hundreds of megabytes in the pool.
            retire_heap_cells: 1 << 20,
        }
    }
}

/// One cached program: its parsed form, compiled templates and warm machine
/// pool, shared as an `Arc` across every session that loaded the same
/// (normalized) program text.
pub struct ProgramEntry {
    // SAFETY-ORDER: `machines` is declared before `program` so pooled
    // machines drop before the program they borrow.
    machines: Mutex<Vec<Machine<'static>>>,
    hash: u64,
    clause_count: usize,
    pool: PoolConfig,
    machine_config: MachineConfig,
    templates: Arc<[ClauseTemplate]>,
    program: Program,
}

impl ProgramEntry {
    /// FNV-1a hash of the normalized program text: a stable display id for
    /// logs and the wire protocol (lookups use the full text).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Number of clauses in the program.
    pub fn clause_count(&self) -> usize {
        self.clause_count
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of machines currently parked in this entry's pool.
    pub fn pooled_machines(&self) -> usize {
        self.machines.lock().expect("machine pool poisoned").len()
    }

    /// Takes a machine for this program — warm from the pool when one is
    /// parked, freshly built over the shared templates otherwise. The lease
    /// returns (or retires) the machine on drop.
    pub(crate) fn lease(self: &Arc<Self>) -> MachineLease {
        let pooled = self.machines.lock().expect("machine pool poisoned").pop();
        let machine = pooled.unwrap_or_else(|| {
            // SAFETY: the `'static` is a crate-internal fiction. The machine
            // borrows `self.program`, which lives inside this `Arc`
            // allocation: it is address-stable and never mutated after
            // construction. Every `Machine<'static>` is confined to either
            // a `MachineLease` (which holds a clone of this `Arc`, so the
            // program outlives the lease) or `self.machines` (declared
            // before `program`, so pooled machines drop first). Neither the
            // lease's machine accessor nor this method is public, so no
            // machine can outlive the entry from safe client code.
            let program: &'static Program = unsafe { &*(&self.program as *const Program) };
            Machine::with_templates(program, self.machine_config, Arc::clone(&self.templates))
        });
        MachineLease {
            machine: Some(machine),
            entry: Arc::clone(self),
        }
    }
}

/// A leased machine: RAII over the pool. Dropping the lease parks the
/// machine back in its entry's pool — unless its last query's arena
/// high-water mark crossed the retirement threshold, in which case the
/// machine (and its grown arena buffer) is dropped instead.
pub(crate) struct MachineLease {
    machine: Option<Machine<'static>>,
    entry: Arc<ProgramEntry>,
}

impl MachineLease {
    pub(crate) fn machine(&mut self) -> &mut Machine<'static> {
        self.machine.as_mut().expect("machine present until drop")
    }
}

impl Drop for MachineLease {
    fn drop(&mut self) {
        let machine = self.machine.take().expect("machine present until drop");
        if machine.stats().heap_high_water > self.entry.pool.retire_heap_cells {
            return; // retire: free the grown arena with the machine
        }
        let mut pool = self.entry.machines.lock().expect("machine pool poisoned");
        if pool.len() < self.entry.pool.max_pooled {
            pool.push(machine);
        }
    }
}

/// Cache hit/miss/eviction counters plus the current entry count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads answered by an existing entry.
    pub hits: u64,
    /// Loads that parsed and compiled a new entry.
    pub misses: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
}

struct CacheInner {
    /// Normalized program text → entry. The *full* text is the key:
    /// correctness never rests on a hash not colliding.
    entries: HashMap<String, Arc<ProgramEntry>>,
    /// LRU order, front = coldest. Keys mirror `entries`.
    lru: VecDeque<String>,
}

/// The compiled-template cache: bounded, LRU-evicted, shared across every
/// session of a server. See the module docs for the keying discipline.
pub struct TemplateCache {
    capacity: usize,
    machine_config: MachineConfig,
    pool: PoolConfig,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl TemplateCache {
    /// Creates a cache holding at most `capacity` compiled programs, whose
    /// leased machines run under `machine_config` and pool under `pool`.
    pub fn new(capacity: usize, machine_config: MachineConfig, pool: PoolConfig) -> Self {
        TemplateCache {
            capacity: capacity.max(1),
            machine_config,
            pool,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                lru: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Loads program text: parse, normalize, and either return the shared
    /// entry for identical normalized text (a *hit* — second element
    /// `true`) or compile and cache a new entry (a *miss* — `false`),
    /// evicting the least-recently-used entry past capacity. Evicted
    /// entries stay alive for sessions still holding their `Arc`.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed program text.
    pub fn load(&self, source: &str) -> Result<(Arc<ProgramEntry>, bool), ParseError> {
        let program = parse_program(source)?;
        let normalized = normalize(&program);
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(entry) = inner.entries.get(&normalized).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            touch_lru(&mut inner.lru, &normalized);
            return Ok((entry, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let templates: Arc<[ClauseTemplate]> =
            granlog_engine::template::compile_program(&program).into();
        let entry = Arc::new(ProgramEntry {
            machines: Mutex::new(Vec::new()),
            hash: fnv64(normalized.as_bytes()),
            clause_count: program.clauses().len(),
            pool: self.pool,
            machine_config: self.machine_config,
            templates,
            program,
        });
        inner.entries.insert(normalized.clone(), Arc::clone(&entry));
        inner.lru.push_back(normalized);
        while inner.entries.len() > self.capacity {
            let coldest = inner.lru.pop_front().expect("lru mirrors entries");
            inner.entries.remove(&coldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok((entry, false))
    }

    /// Current counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("cache poisoned").entries.len(),
        }
    }
}

fn touch_lru(lru: &mut VecDeque<String>, key: &str) {
    if let Some(pos) = lru.iter().position(|k| k == key) {
        let key = lru.remove(pos).expect("position just found");
        lru.push_back(key);
    }
}

/// The canonical text of a parsed program: every directive and every clause
/// printed one per line. Clause terms print *without* their source name
/// table, so variables render as `_N` by first-occurrence id — whitespace,
/// comments and variable spelling all disappear, while any semantic change
/// (clauses, their order, directives) changes the text.
fn normalize(program: &Program) -> String {
    let mut out = String::new();
    for directive in program.directives() {
        let _ = writeln!(out, "{directive:?}");
    }
    for clause in program.clauses() {
        let _ = writeln!(out, "{} :- {}", clause.head, clause.body);
    }
    out
}

/// FNV-1a, 64-bit: the display hash of a normalized program.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const APPEND: &str = r#"
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).
    "#;

    fn cache(capacity: usize) -> TemplateCache {
        TemplateCache::new(capacity, MachineConfig::default(), PoolConfig::default())
    }

    #[test]
    fn identical_programs_share_one_entry() {
        let cache = cache(8);
        let (a, hit_a) = cache.load(APPEND).unwrap();
        // Different whitespace, a comment, different variable names: the
        // normalized text is identical, so the entry must be shared.
        let reformatted = "append([],Q,Q).  % base\nappend([X|Xs],Q,[X|R]):-append(Xs,Q,R).";
        let (b, hit_b) = cache.load(reformatted).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "tenants must share one Arc");
        assert_eq!(a.hash(), b.hash());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn modified_programs_never_reuse_stale_templates() {
        let cache = cache(8);
        let (a, _) = cache.load(APPEND).unwrap();
        // One clause changed: must be a distinct entry with distinct
        // templates, not a stale hit.
        let modified = APPEND.replace("append([], L, L).", "append([], _, []).");
        let (b, hit) = cache.load(&modified).unwrap();
        assert!(!hit);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn directives_are_part_of_the_key() {
        let cache = cache(8);
        let (a, _) = cache.load(APPEND).unwrap();
        let with_mode = format!(":- mode append(+, +, -).\n{APPEND}");
        let (b, hit) = cache.load(&with_mode).unwrap();
        assert!(!hit);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn lru_eviction_counts_and_evicts_the_coldest() {
        let cache = cache(2);
        cache.load("p(1).").unwrap();
        cache.load("q(1).").unwrap();
        // Touch p so q becomes the coldest.
        cache.load("p(1).").unwrap();
        cache.load("r(1).").unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // p survived (hit); q was evicted (miss again).
        let (_, p_hit) = cache.load("p(1).").unwrap();
        assert!(p_hit);
        let (_, q_hit) = cache.load("q(1).").unwrap();
        assert!(!q_hit);
    }

    #[test]
    fn leases_pool_and_retire_machines() {
        let cache = TemplateCache::new(
            4,
            MachineConfig::default(),
            PoolConfig {
                max_pooled: 2,
                retire_heap_cells: 200,
            },
        );
        let src = r#"
            build(0, []).
            build(N, [N|T]) :- N > 0, N1 is N - 1, build(N1, T).
        "#;
        let (entry, _) = cache.load(src).unwrap();
        {
            let mut lease = entry.lease();
            let out = lease.machine().run_query("build(3, L)").unwrap();
            assert!(out.succeeded);
        }
        assert_eq!(entry.pooled_machines(), 1, "small query pools its machine");
        {
            let mut lease = entry.lease();
            let out = lease.machine().run_query("build(200, L)").unwrap();
            assert!(out.succeeded);
        }
        assert_eq!(
            entry.pooled_machines(),
            0,
            "a query past the high-water threshold retires its machine"
        );
    }

    #[test]
    fn parse_errors_surface() {
        let cache = cache(2);
        assert!(cache.load("p(1").is_err());
        assert_eq!(cache.stats().entries, 0);
    }
}

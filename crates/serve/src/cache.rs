//! The shared compiled-template cache and per-program warm machine pools.
//!
//! Tenants upload program *text*; the cache parses it, **normalizes** it
//! (canonical clause/directive printing — whitespace, comments and variable
//! spelling disappear) and keys the entry by the full normalized text. Two
//! tenants uploading the same program — however differently formatted —
//! share one [`ProgramEntry`]: one parse, one template compilation, one
//! machine pool. A modified program normalizes differently and *cannot* get
//! a stale entry, because the key is the program's entire content, not a
//! file path, an mtime, or a truncated digest (the 64-bit FNV hash exposed
//! as [`ProgramEntry::hash`] is a display id, never the lookup key).
//!
//! Machines are recycled through a bounded per-entry free-list. A machine
//! whose last query pushed its arena high-water mark past the pool's
//! retirement threshold is dropped instead of pooled, returning its arena
//! to the allocator — the pool stays warm without slowly accreting the
//! largest arena any tenant ever needed.
//!
//! # Quarantine
//!
//! A machine whose query **panicked** (or hit an injected fault) is
//! *quarantined*: dropped on the spot, never pooled, counted in the cache's
//! [`CacheStats::quarantined`] gauge. Each quarantine also bumps the
//! entry's **pool generation**; pooled machines remember the generation
//! they were parked under, and a checkout discards any machine from an
//! older generation rather than hand it out. A fresh machine replaces it —
//! correctness never depends on trusting state that shared an entry with a
//! panic.

use crate::ServeError;
use granlog_datalog::{CompiledDatalog, Database, DatalogError};
use granlog_engine::{ClauseTemplate, Machine, MachineConfig};
use granlog_ir::parser::parse_program;
use granlog_ir::Program;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Machine-pool policy of one cache (applied per program entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Maximum machines kept warm per program entry.
    pub max_pooled: usize,
    /// Retirement threshold: a machine whose last query's arena high-water
    /// mark exceeds this many cells is dropped instead of pooled.
    pub retire_heap_cells: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_pooled: 16,
            // 1M cells ≈ 16 MiB of arena: plenty for every benchmark
            // program at default sizes, small enough that one outlier query
            // cannot park hundreds of megabytes in the pool.
            retire_heap_cells: 1 << 20,
        }
    }
}

/// Machine-pool gauges shared by a cache and every entry it creates, so the
/// server's `stats` line aggregates across programs.
#[derive(Debug, Default)]
pub(crate) struct PoolCounters {
    /// Machines dropped because their query panicked or hit an injected
    /// fault. Monotonic; any growth is a fault-isolation event.
    pub(crate) quarantined: AtomicU64,
    /// Machines dropped by the arena high-water retirement policy (routine
    /// hygiene, not a fault).
    pub(crate) retired: AtomicU64,
    /// Leases checked out and not yet returned. Quiescent servers must read
    /// 0 here: a stuck positive value is a leaked lease.
    pub(crate) leases_active: AtomicU64,
}

/// A parked machine tagged with the pool generation it was parked under.
/// Checkouts discard machines from generations older than the entry's
/// current one (a quarantine happened since they were pooled).
struct PooledMachine {
    machine: Machine<'static>,
    generation: u64,
}

/// One cached program: its parsed form, compiled templates and warm machine
/// pool, shared as an `Arc` across every session that loaded the same
/// (normalized) program text.
pub struct ProgramEntry {
    // SAFETY-ORDER: `machines` is declared before `program` so pooled
    // machines drop before the program they borrow.
    machines: Mutex<Vec<PooledMachine>>,
    /// Bumped on every quarantine; stale-generation pooled machines are
    /// discarded at checkout instead of handed out.
    generation: AtomicU64,
    counters: Arc<PoolCounters>,
    hash: u64,
    clause_count: usize,
    pool: PoolConfig,
    machine_config: MachineConfig,
    templates: Arc<[ClauseTemplate]>,
    /// Bottom-up join plans, compiled lazily on the first `engine
    /// bottom-up` query of this program. Compilation is deterministic (no
    /// failpoints cross it), so the result — including a rejection — is
    /// cached for the entry's lifetime, exactly like the SLD templates.
    datalog_plans: OnceLock<Result<CompiledDatalog, DatalogError>>,
    /// The evaluated fact database, shared by every bottom-up session of
    /// this program. Cached only on *success*: an evaluation failed by an
    /// injected fault leaves this slot empty, so the next query simply
    /// re-evaluates — a fault never poisons the entry.
    datalog_db: Mutex<Option<Arc<Database>>>,
    normalized: String,
    program: Program,
}

impl ProgramEntry {
    /// FNV-1a hash of the normalized program text: a stable display id for
    /// logs and the wire protocol (lookups use the full text).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The normalized program text this entry is cached under. This is the
    /// durable store's key too: journaling by the full normalized text means
    /// recovery dedups exactly like the live cache, never by hash.
    pub fn normalized_text(&self) -> &str {
        &self.normalized
    }

    /// Number of clauses in the program.
    pub fn clause_count(&self) -> usize {
        self.clause_count
    }

    /// The parsed program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of machines currently parked in this entry's pool.
    pub fn pooled_machines(&self) -> usize {
        lock_pool(&self.machines).len()
    }

    /// The pool generation: bumped each time a machine of this entry is
    /// quarantined. Exposed for tests and gauges.
    pub fn pool_generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The bottom-up fact database of this program: compiles the join
    /// plans on first use (cached, like the SLD templates), then runs the
    /// stratified semi-naive fixpoint once and shares the evaluated
    /// [`Database`] across every bottom-up session of this entry.
    ///
    /// No machine lease is involved: bottom-up evaluation owns its own
    /// relations, so a failure here can never quarantine a pooled machine.
    ///
    /// # Errors
    ///
    /// [`DatalogError`] when the program is outside the Datalog subset,
    /// not stratified, or unsafe — deterministic, so the rejection is
    /// cached — or when an armed `datalog.*` failpoint fails the fixpoint
    /// (fault-injection builds only; *not* cached, the next query retries).
    pub fn datalog(&self) -> Result<Arc<Database>, DatalogError> {
        // The lock is held across the evaluation on purpose: racing
        // sessions would otherwise each run the whole fixpoint only for
        // all but one result to be dropped.
        let mut slot = self
            .datalog_db
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(db) = slot.as_ref() {
            return Ok(Arc::clone(db));
        }
        let plans = self
            .datalog_plans
            .get_or_init(|| CompiledDatalog::compile(&self.program));
        let plans = plans.as_ref().map_err(Clone::clone)?;
        let db = Arc::new(plans.evaluate()?);
        *slot = Some(Arc::clone(&db));
        Ok(db)
    }

    /// Whether this entry currently holds an evaluated bottom-up database
    /// (for tests and gauges).
    pub fn datalog_cached(&self) -> bool {
        self.datalog_db
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Takes a machine for this program — warm from the pool when one is
    /// parked, freshly built over the shared templates otherwise. The lease
    /// returns (or retires) the machine on drop.
    ///
    /// # Errors
    ///
    /// [`ServeError::Fault`] when the `serve.lease` failpoint is armed and
    /// fires (fault-injection builds only).
    pub(crate) fn lease(self: &Arc<Self>) -> Result<MachineLease, ServeError> {
        granlog_fault::fail_or("serve.lease", || ServeError::Fault("serve.lease"))?;
        let generation = self.generation.load(Ordering::Relaxed);
        let pooled = {
            let mut pool = lock_pool(&self.machines);
            // Discard parked machines from before the latest quarantine:
            // they shared an entry with a panic and are not trusted.
            loop {
                match pool.pop() {
                    Some(parked) if parked.generation == generation => {
                        break Some(parked.machine);
                    }
                    Some(_stale) => continue,
                    None => break None,
                }
            }
        };
        let machine = pooled.unwrap_or_else(|| {
            // SAFETY: the `'static` is a crate-internal fiction. The machine
            // borrows `self.program`, which lives inside this `Arc`
            // allocation: it is address-stable and never mutated after
            // construction. Every `Machine<'static>` is confined to either
            // a `MachineLease` (which holds a clone of this `Arc`, so the
            // program outlives the lease) or `self.machines` (declared
            // before `program`, so pooled machines drop first). Neither the
            // lease's machine accessor nor this method is public, so no
            // machine can outlive the entry from safe client code.
            let program: &'static Program = unsafe { &*(&self.program as *const Program) };
            Machine::with_templates(program, self.machine_config, Arc::clone(&self.templates))
        });
        self.counters.leases_active.fetch_add(1, Ordering::Relaxed);
        Ok(MachineLease {
            machine: Some(machine),
            generation,
            quarantined: false,
            entry: Arc::clone(self),
        })
    }
}

/// Locks a machine pool, recovering from poison: the pool holds plain data
/// (a panic can never leave a `Vec` of machines half-updated in a way that
/// matters — a machine is either in it or not), so the conservative response
/// to a poisoned lock is to keep serving, not to propagate the panic to
/// every other tenant.
fn lock_pool(pool: &Mutex<Vec<PooledMachine>>) -> std::sync::MutexGuard<'_, Vec<PooledMachine>> {
    pool.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A leased machine: RAII over the pool. Dropping the lease parks the
/// machine back in its entry's pool — unless its last query's arena
/// high-water mark crossed the retirement threshold (the machine and its
/// grown arena are dropped), the lease was [quarantined](Self::quarantine),
/// or the thread is panic-unwinding, in which cases the machine never
/// re-enters the pool.
pub(crate) struct MachineLease {
    machine: Option<Machine<'static>>,
    /// The entry's pool generation at checkout; parking back under a newer
    /// generation retires the machine instead.
    generation: u64,
    quarantined: bool,
    entry: Arc<ProgramEntry>,
}

impl MachineLease {
    pub(crate) fn machine(&mut self) -> &mut Machine<'static> {
        self.machine.as_mut().expect("machine present until drop")
    }

    /// Marks this lease's machine as untrusted: its query panicked (caught
    /// by the session) or an injected fault left its state suspect. The
    /// machine is dropped instead of pooled, and the entry's pool
    /// generation bumps so machines pooled before this event are discarded
    /// at their next checkout.
    pub(crate) fn quarantine(&mut self) {
        self.quarantined = true;
    }
}

impl Drop for MachineLease {
    fn drop(&mut self) {
        let counters = &self.entry.counters;
        counters.leases_active.fetch_sub(1, Ordering::Relaxed);
        let machine = self.machine.take().expect("machine present until drop");
        // A panic unwinding through the session quarantines implicitly:
        // machine state at an arbitrary panic point is not pool material.
        if self.quarantined || std::thread::panicking() {
            counters.quarantined.fetch_add(1, Ordering::Relaxed);
            self.entry.generation.fetch_add(1, Ordering::Relaxed);
            return; // drop the machine, never pool it
        }
        if machine.stats().heap_high_water > self.entry.pool.retire_heap_cells {
            counters.retired.fetch_add(1, Ordering::Relaxed);
            return; // retire: free the grown arena with the machine
        }
        // A quarantine elsewhere since checkout retires this machine too —
        // its generation is stale by definition, the checkout path would
        // discard it anyway.
        let generation = self.entry.generation.load(Ordering::Relaxed);
        if generation != self.generation {
            counters.retired.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut pool = lock_pool(&self.entry.machines);
        if pool.len() < self.entry.pool.max_pooled {
            pool.push(PooledMachine {
                machine,
                generation,
            });
        }
    }
}

/// Cache hit/miss/eviction counters plus the current entry count and the
/// machine-pool health gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads answered by an existing entry.
    pub hits: u64,
    /// Loads that parsed and compiled a new entry.
    pub misses: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Machines quarantined after a panic or injected fault (across all
    /// entries; monotonic).
    pub quarantined: u64,
    /// Machines retired by the arena high-water policy (monotonic).
    pub retired: u64,
    /// Leases currently checked out. On a quiescent server this is 0; a
    /// stuck positive value is a leaked lease.
    pub leases_active: u64,
}

struct CacheInner {
    /// Normalized program text → entry. The *full* text is the key:
    /// correctness never rests on a hash not colliding.
    entries: HashMap<String, Arc<ProgramEntry>>,
    /// LRU order, front = coldest. Keys mirror `entries`.
    lru: VecDeque<String>,
}

/// The compiled-template cache: bounded, LRU-evicted, shared across every
/// session of a server. See the module docs for the keying discipline.
pub struct TemplateCache {
    capacity: usize,
    machine_config: MachineConfig,
    pool: PoolConfig,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Shared with every entry this cache creates, so pool gauges aggregate
    /// across programs.
    counters: Arc<PoolCounters>,
}

impl TemplateCache {
    /// Creates a cache holding at most `capacity` compiled programs, whose
    /// leased machines run under `machine_config` and pool under `pool`.
    pub fn new(capacity: usize, machine_config: MachineConfig, pool: PoolConfig) -> Self {
        TemplateCache {
            capacity: capacity.max(1),
            machine_config,
            pool,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                lru: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            counters: Arc::new(PoolCounters::default()),
        }
    }

    /// Loads program text: parse, normalize, and either return the shared
    /// entry for identical normalized text (a *hit* — second element
    /// `true`) or compile and cache a new entry (a *miss* — `false`),
    /// evicting the least-recently-used entry past capacity. Evicted
    /// entries stay alive for sessions still holding their `Arc`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Parse`] for malformed program text;
    /// [`ServeError::Fault`] when the `serve.cache.insert` or
    /// `serve.cache.evict` failpoint fires (fault-injection builds only).
    /// An injected cache fault is evaluated *before* any cache state
    /// mutates, so a failed load leaves the cache exactly as it was.
    pub fn load(&self, source: &str) -> Result<(Arc<ProgramEntry>, bool), ServeError> {
        let program = parse_program(source)?;
        let normalized = normalize(&program);
        let mut inner = self.lock_inner();
        if let Some(entry) = inner.entries.get(&normalized).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            touch_lru(&mut inner.lru, &normalized);
            return Ok((entry, true));
        }
        // Both cache failpoints sit before the insert: the invariant that
        // `entries` and `lru` mirror each other must hold even under
        // injected faults, so injection can fail the *operation* but never
        // interleave with the state update.
        if inner.entries.len() >= self.capacity {
            granlog_fault::fail_or("serve.cache.evict", || {
                ServeError::Fault("serve.cache.evict")
            })?;
        }
        granlog_fault::fail_or("serve.cache.insert", || {
            ServeError::Fault("serve.cache.insert")
        })?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let templates: Arc<[ClauseTemplate]> =
            granlog_engine::template::compile_program(&program).into();
        let entry = Arc::new(ProgramEntry {
            machines: Mutex::new(Vec::new()),
            generation: AtomicU64::new(0),
            counters: Arc::clone(&self.counters),
            hash: fnv64(normalized.as_bytes()),
            clause_count: program.clauses().len(),
            pool: self.pool,
            machine_config: self.machine_config,
            templates,
            datalog_plans: OnceLock::new(),
            datalog_db: Mutex::new(None),
            normalized: normalized.clone(),
            program,
        });
        inner.entries.insert(normalized.clone(), Arc::clone(&entry));
        inner.lru.push_back(normalized);
        while inner.entries.len() > self.capacity {
            // The LRU mirrors `entries`; if recovery from a poisoned lock
            // ever finds them out of sync, stop evicting rather than panic.
            let Some(coldest) = inner.lru.pop_front() else {
                break;
            };
            inner.entries.remove(&coldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok((entry, false))
    }

    /// Current counters, entry count and pool gauges.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.lock_inner().entries.len(),
            quarantined: self.counters.quarantined.load(Ordering::Relaxed),
            retired: self.counters.retired.load(Ordering::Relaxed),
            leases_active: self.counters.leases_active.load(Ordering::Relaxed),
        }
    }

    /// Locks the cache map, recovering from poison. The insert path orders
    /// its two-step update (entry map first, then LRU) so every
    /// intermediate state is safe: a key missing from the LRU can at worst
    /// dodge eviction until touched again, never corrupt a lookup.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn touch_lru(lru: &mut VecDeque<String>, key: &str) {
    if let Some(pos) = lru.iter().position(|k| k == key) {
        let key = lru.remove(pos).expect("position just found");
        lru.push_back(key);
    }
}

/// The canonical text of a parsed program: every directive and every clause
/// printed one per line. Clause terms print *without* their source name
/// table, so variables render as `_N` by first-occurrence id — whitespace,
/// comments and variable spelling all disappear, while any semantic change
/// (clauses, their order, directives) changes the text.
fn normalize(program: &Program) -> String {
    let mut out = String::new();
    for directive in program.directives() {
        let _ = writeln!(out, "{directive:?}");
    }
    for clause in program.clauses() {
        let _ = writeln!(out, "{} :- {}", clause.head, clause.body);
    }
    out
}

/// FNV-1a, 64-bit: the display hash of a normalized program.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const APPEND: &str = r#"
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).
    "#;

    fn cache(capacity: usize) -> TemplateCache {
        TemplateCache::new(capacity, MachineConfig::default(), PoolConfig::default())
    }

    #[test]
    fn identical_programs_share_one_entry() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let cache = cache(8);
        let (a, hit_a) = cache.load(APPEND).unwrap();
        // Different whitespace, a comment, different variable names: the
        // normalized text is identical, so the entry must be shared.
        let reformatted = "append([],Q,Q).  % base\nappend([X|Xs],Q,[X|R]):-append(Xs,Q,R).";
        let (b, hit_b) = cache.load(reformatted).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "tenants must share one Arc");
        assert_eq!(a.hash(), b.hash());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn modified_programs_never_reuse_stale_templates() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let cache = cache(8);
        let (a, _) = cache.load(APPEND).unwrap();
        // One clause changed: must be a distinct entry with distinct
        // templates, not a stale hit.
        let modified = APPEND.replace("append([], L, L).", "append([], _, []).");
        let (b, hit) = cache.load(&modified).unwrap();
        assert!(!hit);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn directives_are_part_of_the_key() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let cache = cache(8);
        let (a, _) = cache.load(APPEND).unwrap();
        let with_mode = format!(":- mode append(+, +, -).\n{APPEND}");
        let (b, hit) = cache.load(&with_mode).unwrap();
        assert!(!hit);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn lru_eviction_counts_and_evicts_the_coldest() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let cache = cache(2);
        cache.load("p(1).").unwrap();
        cache.load("q(1).").unwrap();
        // Touch p so q becomes the coldest.
        cache.load("p(1).").unwrap();
        cache.load("r(1).").unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // p survived (hit); q was evicted (miss again).
        let (_, p_hit) = cache.load("p(1).").unwrap();
        assert!(p_hit);
        let (_, q_hit) = cache.load("q(1).").unwrap();
        assert!(!q_hit);
    }

    #[test]
    fn leases_pool_and_retire_machines() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let cache = TemplateCache::new(
            4,
            MachineConfig::default(),
            PoolConfig {
                max_pooled: 2,
                retire_heap_cells: 200,
            },
        );
        let src = r#"
            build(0, []).
            build(N, [N|T]) :- N > 0, N1 is N - 1, build(N1, T).
        "#;
        let (entry, _) = cache.load(src).unwrap();
        {
            let mut lease = entry.lease().unwrap();
            let out = lease.machine().run_query("build(3, L)").unwrap();
            assert!(out.succeeded);
        }
        assert_eq!(entry.pooled_machines(), 1, "small query pools its machine");
        {
            let mut lease = entry.lease().unwrap();
            let out = lease.machine().run_query("build(200, L)").unwrap();
            assert!(out.succeeded);
        }
        assert_eq!(
            entry.pooled_machines(),
            0,
            "a query past the high-water threshold retires its machine"
        );
        let stats = cache.stats();
        assert_eq!(stats.retired, 1);
        assert_eq!(stats.leases_active, 0);
    }

    #[test]
    fn quarantined_machines_never_reenter_the_pool() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let cache = cache(4);
        let (entry, _) = cache.load(APPEND).unwrap();
        {
            let mut lease = entry.lease().unwrap();
            lease.machine().run_query("append([1], [2], X)").unwrap();
            lease.quarantine();
        }
        assert_eq!(entry.pooled_machines(), 0, "quarantined machine dropped");
        assert_eq!(cache.stats().quarantined, 1);
        assert_eq!(entry.pool_generation(), 1);
        // A fresh lease works fine and pools normally under the new
        // generation.
        {
            let mut lease = entry.lease().unwrap();
            let out = lease.machine().run_query("append([1], [2], X)").unwrap();
            assert!(out.succeeded);
        }
        assert_eq!(entry.pooled_machines(), 1);
        assert_eq!(cache.stats().leases_active, 0);
    }

    #[test]
    fn quarantine_flushes_machines_pooled_under_the_old_generation() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let cache = cache(4);
        let (entry, _) = cache.load(APPEND).unwrap();
        // Park two machines under generation 0.
        {
            let _a = entry.lease().unwrap();
            let _b = entry.lease().unwrap();
        }
        assert_eq!(entry.pooled_machines(), 2);
        // Quarantine a third: generation bumps, the two parked machines are
        // now stale.
        {
            let mut lease = entry.lease().unwrap();
            lease.quarantine();
        }
        // The next checkout discards both stale machines and builds fresh.
        {
            let mut lease = entry.lease().unwrap();
            let out = lease.machine().run_query("append([], [], X)").unwrap();
            assert!(out.succeeded);
        }
        assert_eq!(
            entry.pooled_machines(),
            1,
            "only the fresh machine (new generation) is pooled"
        );
    }

    #[test]
    fn a_panicking_query_quarantines_implicitly() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let cache = cache(4);
        let (entry, _) = cache.load(APPEND).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _lease = entry.lease().unwrap();
            panic!("boom mid-query");
        }));
        assert!(result.is_err());
        assert_eq!(
            entry.pooled_machines(),
            0,
            "a machine unwound through a panic must not be pooled"
        );
        assert_eq!(cache.stats().quarantined, 1);
        assert_eq!(cache.stats().leases_active, 0);
    }

    #[test]
    fn parse_errors_surface() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let cache = cache(2);
        assert!(cache.load("p(1").is_err());
        assert_eq!(cache.stats().entries, 0);
    }
}

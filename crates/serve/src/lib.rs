//! Multi-tenant query service over the preemptible granlog engine.
//!
//! This crate turns the single-shot [`granlog_engine::Machine`] into a
//! long-lived *service*:
//!
//! - [`cache::TemplateCache`] — compiled-template cache keyed by the full
//!   normalized program text, shared as [`std::sync::Arc`] across tenants,
//!   LRU-bounded, with hit/miss/eviction counters and a per-program machine
//!   pool recycled by arena high-water mark.
//! - [`session::Session`] — one tenant's loaded program and budgets; runs
//!   queries in quantum-sized preemptible slices over the engine's
//!   [`granlog_engine::Budget`] API, with a hard tail slice so over-budget
//!   queries unwind through the engine's own error path.
//! - [`server::Server`] — a thread-per-connection TCP front end speaking a
//!   line protocol, plus [`client::ServeClient`], a scripted client used by
//!   the integration tests, the CI smoke job and `bench_serve`.
//!
//! The CLI exposes all of this as `granlog serve` (see the README).

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod obs;
pub mod server;
pub mod session;

pub use cache::{CacheStats, PoolConfig, ProgramEntry, TemplateCache};
pub use client::{ClientReply, ServeClient, ServerStats};
pub use obs::ServeObs;
pub use server::{BootError, ServeConfig, Server, ServerHandle};
pub use session::{DatalogReplyStats, EngineKind, LoadReply, QueryReply, Session, SessionBudget};

use granlog_engine::EngineError;
use granlog_ir::parser::ParseError;
use std::fmt;

/// Serializes fault-injection tests against every other test in this
/// crate: the failpoint registry is process-global, so a test that arms a
/// failpoint holds the exclusive lock while ordinary tests (whose queries
/// cross the same failpoint sites) hold the shared one.
#[cfg(all(test, feature = "failpoints"))]
pub(crate) mod faultsync {
    use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

    static LOCK: RwLock<()> = RwLock::new(());

    pub(crate) fn exclusive() -> RwLockWriteGuard<'static, ()> {
        LOCK.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn shared() -> RwLockReadGuard<'static, ()> {
        LOCK.read().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Everything a session operation can fail with.
///
/// Every variant maps to a stable kebab-case wire code (see
/// [`ServeError::code`]) that the server prepends to its `err` replies —
/// `err <code> <message>` — so clients can dispatch on the class of failure
/// without parsing prose.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Program or goal text did not parse.
    Parse(ParseError),
    /// The engine failed — including `BudgetExceeded` for sessions whose
    /// step or heap budget ran out.
    Engine(EngineError),
    /// The bottom-up engine rejected the loaded program or the goal
    /// (outside the Datalog subset, unstratified, unsafe), or an injected
    /// fault failed the fixpoint/join. Shares the `engine` wire code: for
    /// a client it is the same class — this engine cannot answer this
    /// query — and the session survives it identically.
    Datalog(granlog_datalog::DatalogError),
    /// A query was issued before any program was loaded.
    NoProgram,
    /// A serve-layer invariant broke (a worker panicked mid-query, pool
    /// accounting failed). The offending machine is quarantined and the
    /// session survives; the message describes what happened.
    Internal(String),
    /// An armed failpoint injected this failure at a serve seam
    /// (fault-injection builds only). Carries the failpoint name.
    Fault(&'static str),
    /// The durable store rejected a journaled mutation (WAL append or fsync
    /// failed). The in-memory load succeeded but is *not* durable, so the
    /// command fails rather than silently over-promise.
    Store(String),
    /// The server is at its connection cap and shed this connection.
    Overloaded,
    /// The server is draining for shutdown and no longer accepts work.
    ShuttingDown,
}

impl ServeError {
    /// The stable wire code of this error class, sent as the first field of
    /// an `err` reply line.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Parse(_) => "parse",
            ServeError::Engine(EngineError::BudgetExceeded { .. }) => "budget",
            ServeError::Engine(EngineError::Fault(_)) => "fault",
            ServeError::Engine(_) => "engine",
            ServeError::Datalog(_) => "engine",
            ServeError::NoProgram => "no-program",
            ServeError::Internal(_) => "internal",
            ServeError::Fault(_) => "fault",
            ServeError::Store(_) => "store",
            ServeError::Overloaded => "overloaded",
            ServeError::ShuttingDown => "shutdown",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "parse: {e}"),
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::Datalog(e) => write!(f, "bottom-up: {e}"),
            ServeError::NoProgram => write!(f, "no program loaded: send `load` first"),
            ServeError::Internal(msg) => write!(f, "internal: {msg}"),
            ServeError::Fault(name) => write!(f, "injected fault at failpoint `{name}`"),
            ServeError::Store(msg) => write!(f, "durable store: {msg}"),
            ServeError::Overloaded => {
                write!(f, "server at connection capacity, retry later")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ParseError> for ServeError {
    fn from(e: ParseError) -> Self {
        ServeError::Parse(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<granlog_datalog::DatalogError> for ServeError {
    fn from(e: granlog_datalog::DatalogError) -> Self {
        ServeError::Datalog(e)
    }
}

//! Multi-tenant query service over the preemptible granlog engine.
//!
//! This crate turns the single-shot [`granlog_engine::Machine`] into a
//! long-lived *service*:
//!
//! - [`cache::TemplateCache`] — compiled-template cache keyed by the full
//!   normalized program text, shared as [`std::sync::Arc`] across tenants,
//!   LRU-bounded, with hit/miss/eviction counters and a per-program machine
//!   pool recycled by arena high-water mark.
//! - [`session::Session`] — one tenant's loaded program and budgets; runs
//!   queries in quantum-sized preemptible slices over the engine's
//!   [`granlog_engine::Budget`] API, with a hard tail slice so over-budget
//!   queries unwind through the engine's own error path.
//! - [`server::Server`] — a thread-per-connection TCP front end speaking a
//!   line protocol, plus [`client::ServeClient`], a scripted client used by
//!   the integration tests, the CI smoke job and `bench_serve`.
//!
//! The CLI exposes all of this as `granlog serve` (see the README).

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod server;
pub mod session;

pub use cache::{CacheStats, PoolConfig, ProgramEntry, TemplateCache};
pub use client::{ClientReply, ServeClient};
pub use server::{ServeConfig, Server, ServerHandle};
pub use session::{LoadReply, QueryReply, Session, SessionBudget};

use granlog_engine::EngineError;
use granlog_ir::parser::ParseError;
use std::fmt;

/// Everything a session operation can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Program or goal text did not parse.
    Parse(ParseError),
    /// The engine failed — including `BudgetExceeded` for sessions whose
    /// step or heap budget ran out.
    Engine(EngineError),
    /// A query was issued before any program was loaded.
    NoProgram,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "parse: {e}"),
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::NoProgram => write!(f, "no program loaded: send `load` first"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ParseError> for ServeError {
    fn from(e: ParseError) -> Self {
        ServeError::Parse(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

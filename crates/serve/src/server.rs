//! The TCP front end: thread-per-connection sessions over a shared
//! [`TemplateCache`], speaking a small line protocol.
//!
//! # Protocol
//!
//! The server greets each connection with `ok granlog-serve`. Commands are
//! one line each (`\n`-terminated); replies are one or more lines, the last
//! starting with `ok`, `done` or `err`:
//!
//! | command | reply |
//! |---|---|
//! | `load <nbytes>` + exactly N raw bytes of program text | `ok program=<hash> clauses=<n> cache=<hit\|miss>` |
//! | `query <goal>` | `bind <name> = <term>` lines, then `done ok\|no steps=<n> heap=<n> slices=<n>` |
//! | `budget steps <n\|off>` | `ok` |
//! | `budget heap <n\|off>` | `ok` |
//! | `budget quantum <n>` | `ok` |
//! | `stats` | `ok hits=<n> misses=<n> evictions=<n> entries=<n> sessions=<n>` |
//! | `quit` | `ok bye`, connection closes |
//! | `shutdown` | `ok shutting-down`, server stops accepting |
//!
//! Any failure (parse error, engine error, exceeded budget, protocol
//! misuse) is a single `err <message>` line; the session survives and the
//! next command is read normally. The `load` payload is a byte-counted
//! blob, so programs may contain newlines without any quoting scheme.

use crate::cache::{PoolConfig, TemplateCache};
use crate::session::{Session, SessionBudget};
use granlog_engine::MachineConfig;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Largest `load` payload the server will read, in bytes.
const MAX_PROGRAM_BYTES: u64 = 16 * 1024 * 1024;

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Maximum programs kept compiled in the shared cache.
    pub cache_capacity: usize,
    /// Default budget for new sessions (each can adjust its own).
    pub budget: SessionBudget,
    /// Engine configuration for pooled machines.
    pub machine_config: MachineConfig,
    /// Machine-pool policy per cached program.
    pub pool: PoolConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_capacity: 64,
            budget: SessionBudget::default(),
            machine_config: MachineConfig::default(),
            pool: PoolConfig::default(),
        }
    }
}

struct ServerState {
    cache: Arc<TemplateCache>,
    default_budget: SessionBudget,
    stop: AtomicBool,
    active_sessions: AtomicU64,
}

/// The serve front end. [`Server::start`] binds, spawns the accept loop and
/// returns a [`ServerHandle`]; the server runs until
/// [`ServerHandle::shutdown`] or a client sends `shutdown`.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts accepting connections, one thread per
    /// session.
    ///
    /// # Errors
    ///
    /// Any `io::Error` from binding the listener.
    pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            cache: Arc::new(TemplateCache::new(
                config.cache_capacity,
                config.machine_config,
                config.pool,
            )),
            default_budget: config.budget,
            stop: AtomicBool::new(false),
            active_sessions: AtomicU64::new(0),
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_state));
        Ok(ServerHandle {
            local_addr,
            state,
            accept: Some(accept),
        })
    }
}

/// Handle to a running server: its bound address and its lifecycle.
pub struct ServerHandle {
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (with the real port when the
    /// config asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared template cache (for stats inspection).
    pub fn cache(&self) -> &Arc<TemplateCache> {
        &self.state.cache
    }

    /// Blocks until the server stops on its own (a client sent `shutdown`),
    /// then waits for every session thread to finish. This is what
    /// `granlog serve` does after printing its listening line.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops accepting connections and waits for the accept loop and every
    /// session thread to finish.
    pub fn shutdown(mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Nudge the accept loop out of its blocking `accept()`.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.state.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.local_addr);
            let _ = accept.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    let sessions: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let session_state = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            session_state.active_sessions.fetch_add(1, Ordering::SeqCst);
            let _ = serve_connection(stream, &session_state);
            session_state.active_sessions.fetch_sub(1, Ordering::SeqCst);
        });
        sessions.lock().expect("session list poisoned").push(handle);
    }
    for handle in sessions.into_inner().expect("session list poisoned") {
        let _ = handle.join();
    }
}

fn serve_connection(stream: TcpStream, state: &Arc<ServerState>) -> io::Result<()> {
    // Replies are single small writes; without TCP_NODELAY the Nagle /
    // delayed-ACK interaction adds tens of milliseconds to every command.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writeln!(writer, "ok granlog-serve")?;
    let mut session = Session::new(Arc::clone(&state.cache), state.default_budget);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let cmd = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match cmd.split_once(' ') {
            Some((v, r)) => (v, r.trim()),
            None => (cmd, ""),
        };
        match verb {
            "load" => cmd_load(&mut reader, &mut writer, &mut session, rest)?,
            "query" => cmd_query(&mut writer, &mut session, rest)?,
            "budget" => cmd_budget(&mut writer, &mut session, rest)?,
            "stats" => {
                let s = state.cache.stats();
                writeln!(
                    writer,
                    "ok hits={} misses={} evictions={} entries={} sessions={}",
                    s.hits,
                    s.misses,
                    s.evictions,
                    s.entries,
                    state.active_sessions.load(Ordering::SeqCst),
                )?;
            }
            "quit" => {
                writeln!(writer, "ok bye")?;
                return Ok(());
            }
            "shutdown" => {
                writeln!(writer, "ok shutting-down")?;
                state.stop.store(true, Ordering::SeqCst);
                // Nudge the accept loop in case no other connection arrives.
                if let Ok(addr) = writer.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
            "" => {} // blank line: ignore
            other => writeln!(writer, "err unknown command `{other}`")?,
        }
    }
}

fn cmd_load(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    session: &mut Session,
    arg: &str,
) -> io::Result<()> {
    let nbytes: u64 = match arg.parse() {
        Ok(n) if n <= MAX_PROGRAM_BYTES => n,
        Ok(_) => {
            return writeln!(writer, "err program larger than {MAX_PROGRAM_BYTES} bytes");
        }
        Err(_) => return writeln!(writer, "err usage: load <nbytes>"),
    };
    let mut payload = Vec::with_capacity(nbytes as usize);
    reader.take(nbytes).read_to_end(&mut payload)?;
    if payload.len() as u64 != nbytes {
        return writeln!(writer, "err short read: connection truncated");
    }
    let source = match String::from_utf8(payload) {
        Ok(s) => s,
        Err(_) => return writeln!(writer, "err program is not valid utf-8"),
    };
    match session.load(&source) {
        Ok(reply) => writeln!(
            writer,
            "ok program={:016x} clauses={} cache={}",
            reply.hash,
            reply.clauses,
            if reply.cache_hit { "hit" } else { "miss" },
        ),
        Err(e) => writeln!(writer, "err {e}"),
    }
}

fn cmd_query(writer: &mut TcpStream, session: &mut Session, goal: &str) -> io::Result<()> {
    if goal.is_empty() {
        return writeln!(writer, "err usage: query <goal>");
    }
    match session.query(goal) {
        Ok(reply) => {
            if reply.succeeded {
                for (name, term) in &reply.bindings {
                    writeln!(writer, "bind {name} = {term}")?;
                }
            }
            writeln!(
                writer,
                "done {} steps={} heap={} slices={}",
                if reply.succeeded { "ok" } else { "no" },
                reply.steps,
                reply.heap_high_water,
                reply.slices,
            )
        }
        Err(e) => writeln!(writer, "err {e}"),
    }
}

fn cmd_budget(writer: &mut TcpStream, session: &mut Session, args: &str) -> io::Result<()> {
    let mut budget = session.budget();
    let reply = match args.split_once(' ').map(|(k, v)| (k, v.trim())) {
        Some(("steps", "off")) => {
            budget.steps = None;
            Ok(())
        }
        Some(("steps", v)) => v.parse().map(|n| budget.steps = Some(n)),
        Some(("heap", "off")) => {
            budget.heap_cells = None;
            Ok(())
        }
        Some(("heap", v)) => v.parse().map(|n| budget.heap_cells = Some(n)),
        Some(("quantum", v)) => v.parse().map(|n| budget.quantum = n),
        _ => {
            return writeln!(
                writer,
                "err usage: budget steps|heap <n|off> | budget quantum <n>"
            );
        }
    };
    match reply {
        Ok(()) => {
            session.set_budget(budget);
            writeln!(writer, "ok")
        }
        Err(_) => writeln!(writer, "err not a number: `{args}`"),
    }
}

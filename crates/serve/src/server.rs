//! The TCP front end: thread-per-connection sessions over a shared
//! [`TemplateCache`], speaking a small line protocol.
//!
//! # Protocol
//!
//! The server greets each connection with `ok granlog-serve`. Commands are
//! one line each (`\n`-terminated); replies are one or more lines, the last
//! starting with `ok`, `done` or `err`:
//!
//! | command | reply |
//! |---|---|
//! | `load <nbytes>` + exactly N raw bytes of program text | `ok program=<hash> clauses=<n> cache=<hit\|miss>` |
//! | `query <goal>` | `bind <name> = <term>` lines, then `done ok\|no steps=<n> heap=<n> slices=<n>` |
//! | `budget steps <n\|off>` | `ok` |
//! | `budget heap <n\|off>` | `ok` |
//! | `budget wall <ms\|off>` | `ok` |
//! | `budget quantum <n>` | `ok` |
//! | `engine <sld\|bottom-up>` | `ok engine=<name>` |
//! | `stats` | `ok hits=<n> misses=<n> evictions=<n> entries=<n> sessions=<n> quarantined=<n> retired=<n> leases=<n> shed=<n>` plus, with a store configured, ` recovered=<n> stored=<n> wal_bytes=<n> wal_records=<n> unsynced=<n> snapshot_age_ms=<n> last_fsync_ms=<n>`, always ending ` uptime_ms=<n> version=<semver>` |
//! | `metrics` | `ok <nbytes>` + exactly N bytes of Prometheus text exposition |
//! | `trace on\|off` | `ok trace=on\|off` — toggles the **server-global** event ring |
//! | `trace dump` | `ok <nbytes>` + exactly N bytes of JSONL trace events (drains the ring) |
//! | `quit` | `ok bye`, connection closes |
//! | `shutdown` | `ok shutting-down`, server stops accepting |
//!
//! Any failure (parse error, engine error, exceeded budget, protocol
//! misuse) is a single `err <code> <message>` line — `code` is the stable
//! kebab-case class from [`ServeError::code`] (`parse`, `budget`, `engine`,
//! `no-program`, `proto`, `too-large`, `internal`, `fault`, `store`,
//! `overloaded`, `timeout`, `shutdown`) — and the session survives: the next
//! command is
//! read normally. The `load` payload is a byte-counted blob, so programs
//! may contain newlines without any quoting scheme.
//!
//! Under `engine bottom-up` a query's `done` line keeps the legacy
//! `steps=0 heap=0 slices=0` fields (a fixpoint has no SLD resource
//! meters) and appends `answers=<n> rounds=<n> facts=<n>`; `bind` lines
//! enumerate every answer, so variable names repeat once per answer.
//!
//! # Robustness
//!
//! Reads are *ticked*: the socket runs under a short read timeout and the
//! connection loop re-checks the server's stop flag and the session's idle
//! clocks on every tick, so a wedged or silent peer can never pin a thread
//! past shutdown. Three timers fall out of one mechanism:
//!
//! - **graceful shutdown** — when the stop flag rises, in-flight commands
//!   finish and write their reply (long queries are already bounded by the
//!   session budget's hard tail slice); any command read after the flag —
//!   and the next otherwise-idle read tick — closes the connection with
//!   `err shutdown ...`.
//! - **idle reaping** — a connection with *no partial command* buffered for
//!   longer than [`ServeConfig::idle_timeout`] is reaped with
//!   `err timeout ...`.
//! - **torn frames** — a connection that started a command (or a `load`
//!   payload) and stalls mid-frame past [`ServeConfig::io_timeout`] is
//!   cut: half a frame is a fault, not a session.
//!
//! Past [`ServeConfig::max_conns`] concurrent connections the acceptor
//! *sheds*: the new connection receives `err overloaded ...` instead of
//! the greeting and is closed, which [`crate::client::ServeClient`] turns
//! into a typed retryable error. Shed connections are counted in the
//! `stats` line.

use crate::cache::{PoolConfig, TemplateCache};
use crate::obs::ServeObs;
use crate::session::{EngineKind, Session, SessionBudget};
use crate::ServeError;
use granlog_engine::MachineConfig;
use granlog_store::{ProgramStore, StoreConfig, StoreError, StoreObs};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest `load` payload the server will read, in bytes.
const MAX_PROGRAM_BYTES: u64 = 16 * 1024 * 1024;

/// Socket read-timeout tick: the granularity at which connection threads
/// notice the stop flag and their idle clocks.
const READ_TICK: Duration = Duration::from_millis(50);

/// Configuration for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Maximum programs kept compiled in the shared cache.
    pub cache_capacity: usize,
    /// Default budget for new sessions (each can adjust its own).
    pub budget: SessionBudget,
    /// Engine configuration for pooled machines.
    pub machine_config: MachineConfig,
    /// Machine-pool policy per cached program.
    pub pool: PoolConfig,
    /// Connection cap: past this many concurrent sessions new connections
    /// are shed with `err overloaded ...`. `0` = unlimited.
    pub max_conns: usize,
    /// Mid-frame stall bound: a connection that leaves a command line or a
    /// `load` payload incomplete for this long is cut.
    pub io_timeout: Duration,
    /// Idle reaping bound: a connection with no buffered input for this
    /// long is closed with `err timeout ...`. `None` = never reap.
    pub idle_timeout: Option<Duration>,
    /// Durable program store configuration. `None` (the default) keeps the
    /// server fully in-memory; `Some` journals every accepted `load` to a
    /// WAL in the configured directory and replays the corpus at boot.
    pub store: Option<StoreConfig>,
    /// Address for the plaintext Prometheus scrape listener (`None`, the
    /// default, starts none). Serves `GET /` — well, any request — with the
    /// same exposition the `metrics` protocol command returns.
    pub metrics_addr: Option<String>,
    /// Slow-query threshold in milliseconds: an answered query at or above
    /// it is counted, traced, and logged to stderr with its program key,
    /// goal and budget consumption. `None` (the default) disables the log.
    pub slow_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_capacity: 64,
            budget: SessionBudget::default(),
            machine_config: MachineConfig::default(),
            pool: PoolConfig::default(),
            max_conns: 0,
            io_timeout: Duration::from_secs(10),
            idle_timeout: None,
            store: None,
            metrics_addr: None,
            slow_ms: None,
        }
    }
}

/// Why [`Server::start`] could not boot. Distinct from [`ServeError`]
/// (which describes per-command failures on a *running* server): a boot
/// failure is terminal and the CLI turns it into a typed nonzero exit.
#[derive(Debug)]
pub enum BootError {
    /// The listen address could not be bound.
    Bind {
        /// Address the config asked for.
        addr: String,
        /// Underlying I/O error.
        source: io::Error,
    },
    /// The durable store could not be opened or recovered (unusable data
    /// dir, unopenable WAL). Torn/corrupt records are *not* boot errors —
    /// recovery keeps the valid prefix.
    Store(StoreError),
}

impl std::fmt::Display for BootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootError::Bind { addr, source } => {
                write!(f, "cannot bind {addr}: {source}")
            }
            BootError::Store(e) => write!(f, "cannot open data dir: {e}"),
        }
    }
}

impl std::error::Error for BootError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BootError::Bind { source, .. } => Some(source),
            BootError::Store(e) => Some(e),
        }
    }
}

impl From<StoreError> for BootError {
    fn from(e: StoreError) -> Self {
        BootError::Store(e)
    }
}

struct ServerState {
    cache: Arc<TemplateCache>,
    default_budget: SessionBudget,
    stop: AtomicBool,
    active_sessions: AtomicU64,
    /// Connections shed at the acceptor because `max_conns` was reached.
    shed: AtomicU64,
    io_timeout: Duration,
    idle_timeout: Option<Duration>,
    /// The durable store, when `--data-dir` configured one.
    store: Option<ProgramStore>,
    /// Programs rebuilt from the store at boot (0 without a store).
    recovered: u64,
    /// Metrics registry, trace ring and slow-query threshold, shared by
    /// every connection thread and the metrics listener.
    obs: Arc<ServeObs>,
}

/// The serve front end. [`Server::start`] binds, spawns the accept loop and
/// returns a [`ServerHandle`]; the server runs until
/// [`ServerHandle::shutdown`] or a client sends `shutdown`.
pub struct Server;

impl Server {
    /// Binds `config.addr` and starts accepting connections, one thread per
    /// session. With [`ServeConfig::store`] set, opens (or recovers) the
    /// durable store first and replays the recovered corpus into the
    /// template cache — each program compiles exactly once, through the
    /// same normalized-text-keyed path a live `load` takes.
    ///
    /// # Errors
    ///
    /// [`BootError::Bind`] when the listen address cannot be bound;
    /// [`BootError::Store`] when the data dir is unusable. Torn or corrupt
    /// store records never fail boot — recovery keeps the valid prefix.
    pub fn start(config: ServeConfig) -> Result<ServerHandle, BootError> {
        let obs = Arc::new(ServeObs::new(config.slow_ms));
        let store = config.store.map(ProgramStore::open).transpose()?;
        // The store's WAL/fsync/snapshot latencies land in the same registry
        // and ring as everything else.
        if let Some(store) = &store {
            store.set_obs(Some(Arc::new(StoreObs::register(
                &obs.registry,
                Arc::clone(&obs.tracer),
            ))));
        }
        let cache = Arc::new(TemplateCache::new(
            config.cache_capacity,
            config.machine_config,
            config.pool,
        ));
        // Boot replay: warm the cache from the recovered corpus before the
        // listener exists, so the first client query of a recovered program
        // is a cache hit. A record whose text no longer parses (impossible
        // via our own journaling, conceivable via hand-edited files) is
        // skipped — recovery never panics over bad bytes.
        let mut recovered = 0u64;
        if let Some(store) = &store {
            for (_name, text) in store.programs() {
                if cache.load(&text).is_ok() {
                    recovered += 1;
                }
            }
        }
        let bind_err = |source| BootError::Bind {
            addr: config.addr.clone(),
            source,
        };
        let listener = TcpListener::bind(&config.addr).map_err(bind_err)?;
        let local_addr = listener.local_addr().map_err(bind_err)?;
        // Bind the scrape listener before spawning anything: a bad metrics
        // address is a boot error, same as a bad serve address.
        let metrics_listener = config
            .metrics_addr
            .as_ref()
            .map(|addr| -> Result<TcpListener, BootError> {
                let err = |source| BootError::Bind {
                    addr: addr.clone(),
                    source,
                };
                let l = TcpListener::bind(addr).map_err(err)?;
                // Non-blocking accept so the loop can poll the stop flag
                // without needing a shutdown nudge on this socket too.
                l.set_nonblocking(true).map_err(err)?;
                Ok(l)
            })
            .transpose()?;
        let state = Arc::new(ServerState {
            cache,
            default_budget: config.budget,
            stop: AtomicBool::new(false),
            active_sessions: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            io_timeout: config.io_timeout,
            idle_timeout: config.idle_timeout,
            store,
            recovered,
            obs,
        });
        let max_conns = config.max_conns;
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_state, max_conns));
        let (metrics_addr, metrics) = match metrics_listener {
            Some(listener) => {
                let addr = listener.local_addr().ok();
                let metrics_state = Arc::clone(&state);
                (
                    addr,
                    Some(std::thread::spawn(move || {
                        metrics_loop(listener, &metrics_state)
                    })),
                )
            }
            None => (None, None),
        };
        Ok(ServerHandle {
            local_addr,
            metrics_addr,
            state,
            accept: Some(accept),
            metrics,
        })
    }
}

/// Handle to a running server: its bound address and its lifecycle.
pub struct ServerHandle {
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    metrics: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (with the real port when the
    /// config asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The address of the Prometheus scrape listener, when
    /// [`ServeConfig::metrics_addr`] configured one.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The shared template cache (for stats inspection).
    pub fn cache(&self) -> &Arc<TemplateCache> {
        &self.state.cache
    }

    /// The server's observability bundle (registry, trace ring).
    pub fn obs(&self) -> &Arc<ServeObs> {
        &self.state.obs
    }

    /// Connections shed so far because the connection cap was reached.
    pub fn shed_connections(&self) -> u64 {
        self.state.shed.load(Ordering::Relaxed)
    }

    /// Programs replayed from the durable store when this server booted
    /// (0 when no store is configured).
    pub fn recovered_programs(&self) -> u64 {
        self.state.recovered
    }

    /// Blocks until the server stops on its own (a client sent `shutdown`),
    /// then waits for every session thread to finish. This is what
    /// `granlog serve` does after printing its listening line.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept loop only returns once the stop flag rose, which is
        // also the metrics loop's exit condition (it polls every tick).
        if let Some(metrics) = self.metrics.take() {
            let _ = metrics.join();
        }
    }

    /// Stops accepting connections, lets in-flight commands finish their
    /// reply, and waits for the accept loop and every session thread.
    pub fn shutdown(mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Nudge the accept loop out of its blocking `accept()`.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(metrics) = self.metrics.take() {
            let _ = metrics.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.state.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.local_addr);
            let _ = accept.join();
        }
        if let Some(metrics) = self.metrics.take() {
            self.state.stop.store(true, Ordering::SeqCst);
            let _ = metrics.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>, max_conns: usize) {
    let sessions: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Reap finished session threads so a long-lived server's handle
        // list tracks live connections, not its whole history.
        {
            let mut handles = sessions.lock().unwrap_or_else(PoisonError::into_inner);
            let finished: Vec<_> = {
                let mut keep = Vec::new();
                let mut done = Vec::new();
                for handle in handles.drain(..) {
                    if handle.is_finished() {
                        done.push(handle);
                    } else {
                        keep.push(handle);
                    }
                }
                *handles = keep;
                done
            };
            drop(handles);
            for handle in finished {
                let _ = handle.join();
            }
        }
        // Shed past the connection cap: a typed one-line refusal is honest
        // load feedback; an unbounded thread pile-up is an outage.
        if max_conns > 0 && state.active_sessions.load(Ordering::SeqCst) >= max_conns as u64 {
            state.shed.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let err = ServeError::Overloaded;
            let _ = writeln!(stream, "err {} {}", err.code(), err);
            continue;
        }
        state.active_sessions.fetch_add(1, Ordering::SeqCst);
        let session_state = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let _ = serve_connection(stream, &session_state);
            session_state.active_sessions.fetch_sub(1, Ordering::SeqCst);
        });
        sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }
    for handle in sessions
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        let _ = handle.join();
    }
    // Graceful drain ends with durability housekeeping: flush whatever the
    // fsync policy left buffered, then compact so the next boot replays a
    // snapshot instead of the whole log. Best-effort — a failure here loses
    // no acknowledged data (the WAL still holds everything flushed).
    if let Some(store) = &state.store {
        let _ = store.flush();
        let _ = store.snapshot();
    }
}

/// Why the ticked reader returned without a complete line.
enum ReadStatus {
    /// A complete command line (newline stripped by the caller).
    Line,
    /// Clean EOF from the peer.
    Eof,
    /// The server's stop flag rose while waiting.
    Stopped,
    /// No input at all for longer than the idle timeout.
    Idle,
    /// A partial command stalled past the io timeout (torn frame).
    Torn,
    /// The peer sent bytes that are not UTF-8: not a command stream.
    Garbage,
}

/// Reads one command line under the tick discipline: short socket timeouts,
/// re-checking the stop flag and the idle/torn clocks between ticks.
fn read_command(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    state: &ServerState,
) -> io::Result<ReadStatus> {
    line.clear();
    let started = Instant::now();
    loop {
        if granlog_fault::should_fail("serve.sock.read") {
            return Err(injected_io_fault("serve.sock.read"));
        }
        match reader.read_line(line) {
            Ok(0) if line.is_empty() => return Ok(ReadStatus::Eof),
            // EOF mid-line: hand the partial line up; the next read sees
            // the clean EOF.
            Ok(0) => return Ok(ReadStatus::Line),
            Ok(_) if line.ends_with('\n') => return Ok(ReadStatus::Line),
            Ok(_) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // `read_line` keeps the bytes it consumed before the
                // timeout in `line`, so a torn frame accumulates across
                // ticks instead of being dropped.
                if state.stop.load(Ordering::SeqCst) {
                    return Ok(ReadStatus::Stopped);
                }
                if !line.is_empty() {
                    if started.elapsed() >= state.io_timeout {
                        return Ok(ReadStatus::Torn);
                    }
                } else if let Some(idle) = state.idle_timeout {
                    if started.elapsed() >= idle {
                        return Ok(ReadStatus::Idle);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => return Ok(ReadStatus::Garbage),
            Err(e) => return Err(e),
        }
    }
}

fn injected_io_fault(name: &'static str) -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionAborted,
        format!("injected fault at failpoint `{name}`"),
    )
}

fn write_err(writer: &mut TcpStream, err: &ServeError) -> io::Result<()> {
    writeln!(writer, "err {} {}", err.code(), err)
}

fn serve_connection(stream: TcpStream, state: &Arc<ServerState>) -> io::Result<()> {
    // Replies are single small writes; without TCP_NODELAY the Nagle /
    // delayed-ACK interaction adds tens of milliseconds to every command.
    stream.set_nodelay(true)?;
    // The tick: all reads time out quickly so the loop stays responsive to
    // stop/idle/torn conditions. Writes get the full io timeout — a peer
    // that cannot drain a reply line in that long is gone.
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_write_timeout(Some(state.io_timeout.max(READ_TICK)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writeln!(writer, "ok granlog-serve")?;
    let mut session = Session::new(Arc::clone(&state.cache), state.default_budget);
    session.set_tracer(Some(Arc::clone(&state.obs.tracer)));
    let mut line = String::new();
    loop {
        match read_command(&mut reader, &mut line, state)? {
            ReadStatus::Line => {}
            ReadStatus::Eof => return Ok(()), // client hung up
            ReadStatus::Stopped => {
                let _ = write_err(&mut writer, &ServeError::ShuttingDown);
                return Ok(());
            }
            ReadStatus::Idle => {
                let _ = writeln!(writer, "err timeout idle for longer than the idle timeout");
                return Ok(());
            }
            ReadStatus::Torn => {
                let _ = writeln!(writer, "err timeout torn frame: command stalled mid-line");
                return Ok(());
            }
            ReadStatus::Garbage => {
                let _ = writeln!(writer, "err proto command stream is not valid utf-8");
                return Ok(());
            }
        }
        // Drain discipline: a command *read* after the stop flag rose is
        // refused — only commands already dispatched finish their reply.
        if state.stop.load(Ordering::SeqCst) {
            let _ = write_err(&mut writer, &ServeError::ShuttingDown);
            return Ok(());
        }
        // An injected write fault tears the connection between a command
        // and its reply — the client sees an abandoned frame.
        if granlog_fault::should_fail("serve.sock.write") {
            return Err(injected_io_fault("serve.sock.write"));
        }
        let cmd = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match cmd.split_once(' ') {
            Some((v, r)) => (v, r.trim()),
            None => (cmd, ""),
        };
        match verb {
            "load" => cmd_load(&mut reader, &mut writer, &mut session, state, rest)?,
            "query" => cmd_query(&mut writer, &mut session, state, rest)?,
            "budget" => cmd_budget(&mut writer, &mut session, rest)?,
            "engine" => cmd_engine(&mut writer, &mut session, rest)?,
            "metrics" => cmd_metrics(&mut writer, state)?,
            "trace" => cmd_trace(&mut writer, state, rest)?,
            "stats" => {
                let s = state.cache.stats();
                write!(
                    writer,
                    "ok hits={} misses={} evictions={} entries={} sessions={} \
                     quarantined={} retired={} leases={} shed={}",
                    s.hits,
                    s.misses,
                    s.evictions,
                    s.entries,
                    state.active_sessions.load(Ordering::SeqCst),
                    s.quarantined,
                    s.retired,
                    s.leases_active,
                    state.shed.load(Ordering::Relaxed),
                )?;
                // Durability fields ride the same line, appended so existing
                // clients (which parse by field name) never notice. Ages are
                // reported in ms; `last_fsync_ms` is 0 before the first sync.
                if let Some(store) = &state.store {
                    let d = store.stats();
                    write!(
                        writer,
                        " recovered={} stored={} wal_bytes={} wal_records={} unsynced={} \
                         snapshot_age_ms={} last_fsync_ms={}",
                        state.recovered,
                        d.programs,
                        d.wal_bytes,
                        d.wal_records,
                        d.unsynced_records,
                        d.snapshot_age.map_or(0, |a| a.as_millis() as u64),
                        d.last_fsync_age.map_or(0, |a| a.as_millis() as u64),
                    )?;
                }
                // Liveness and build identity close the line; clients parse
                // by field name, so position is compatibility-irrelevant.
                write!(
                    writer,
                    " uptime_ms={} version={}",
                    state.obs.uptime_ms(),
                    env!("CARGO_PKG_VERSION"),
                )?;
                writeln!(writer)?;
            }
            "quit" => {
                writeln!(writer, "ok bye")?;
                return Ok(());
            }
            "shutdown" => {
                writeln!(writer, "ok shutting-down")?;
                state.stop.store(true, Ordering::SeqCst);
                // Nudge the accept loop in case no other connection arrives.
                if let Ok(addr) = writer.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
            "" => {} // blank line: ignore
            other => writeln!(writer, "err proto unknown command `{other}`")?,
        }
    }
}

/// Reads exactly `nbytes` of `load` payload under the tick discipline.
/// Returns the payload, or `None` when the frame tore (EOF or stall
/// mid-payload) — the caller reports and drops the connection.
fn read_payload(
    reader: &mut BufReader<TcpStream>,
    nbytes: usize,
    state: &ServerState,
) -> io::Result<Option<Vec<u8>>> {
    let mut payload = vec![0u8; nbytes];
    let mut filled = 0;
    let started = Instant::now();
    while filled < nbytes {
        match reader.read(&mut payload[filled..]) {
            Ok(0) => return Ok(None), // EOF mid-payload
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Mid-payload is always "torn", never "idle": the frame
                // declared a length it is not delivering.
                if state.stop.load(Ordering::SeqCst) || started.elapsed() >= state.io_timeout {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

fn cmd_load(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    session: &mut Session,
    state: &ServerState,
    arg: &str,
) -> io::Result<()> {
    let nbytes: u64 = match arg.parse() {
        Ok(n) if n <= MAX_PROGRAM_BYTES => n,
        Ok(_) => {
            return writeln!(
                writer,
                "err too-large program larger than {MAX_PROGRAM_BYTES} bytes"
            );
        }
        Err(_) => return writeln!(writer, "err proto usage: load <nbytes>"),
    };
    let Some(payload) = read_payload(reader, nbytes as usize, state)? else {
        let _ = writeln!(writer, "err timeout torn frame: load payload truncated");
        // The stream position is now mid-payload garbage; the only safe
        // continuation is none.
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "load payload truncated",
        ));
    };
    let source = match String::from_utf8(payload) {
        Ok(s) => s,
        Err(_) => return writeln!(writer, "err proto program is not valid utf-8"),
    };
    match session.load(&source) {
        Ok(reply) => {
            // Journal *after* the parse succeeded, keyed by the entry's
            // normalized text — recovery dedups exactly like the live
            // cache. An append failure is surfaced: acking a load the WAL
            // did not accept would break the durability contract.
            if let Some(store) = &state.store {
                let entry = session.entry().expect("load just succeeded");
                if let Err(e) = store.record_load(entry.normalized_text(), &source) {
                    return write_err(writer, &ServeError::Store(e.to_string()));
                }
            }
            state.obs.loads.inc();
            if state.obs.tracer.is_enabled() {
                state.obs.tracer.emit(
                    "load",
                    vec![
                        ("program", format!("{:016x}", reply.hash).into()),
                        ("clauses", reply.clauses.into()),
                        ("cache_hit", reply.cache_hit.into()),
                    ],
                );
            }
            writeln!(
                writer,
                "ok program={:016x} clauses={} cache={}",
                reply.hash,
                reply.clauses,
                if reply.cache_hit { "hit" } else { "miss" },
            )
        }
        Err(e) => write_err(writer, &e),
    }
}

fn cmd_query(
    writer: &mut TcpStream,
    session: &mut Session,
    state: &ServerState,
    goal: &str,
) -> io::Result<()> {
    if goal.is_empty() {
        return writeln!(writer, "err proto usage: query <goal>");
    }
    let obs = &state.obs;
    if obs.tracer.is_enabled() {
        obs.tracer.emit("query_begin", vec![("goal", goal.into())]);
    }
    let started = Instant::now();
    match session.query(goal) {
        Ok(reply) => {
            let elapsed = started.elapsed();
            let ms = elapsed.as_secs_f64() * 1e3;
            obs.queries.inc();
            obs.query_latency_ms.observe(ms);
            obs.query_steps.observe(reply.steps as f64);
            obs.query_heap.observe(reply.heap_high_water as f64);
            obs.slices.add(reply.slices as u64);
            if let Some(d) = &reply.datalog {
                obs.datalog_rounds.add(d.rounds);
                obs.datalog_facts.add(d.facts);
            }
            // The slow-query log works with tracing off: threshold hits are
            // worth a counter and a stderr line even when nobody is dumping
            // the ring.
            if let Some(slow) = obs.slow_ms {
                if elapsed.as_millis() as u64 >= slow {
                    obs.slow_queries.inc();
                    let program = session.entry().map_or(0, |e| e.hash());
                    eprintln!(
                        "slow-query program={program:016x} goal={goal} ms={ms:.1} \
                         steps={} heap={} slices={}",
                        reply.steps, reply.heap_high_water, reply.slices,
                    );
                    if obs.tracer.is_enabled() {
                        obs.tracer.emit(
                            "slow_query",
                            vec![
                                ("program", format!("{program:016x}").into()),
                                ("goal", goal.into()),
                                ("ms", ms.into()),
                                ("steps", reply.steps.into()),
                            ],
                        );
                    }
                }
            }
            if obs.tracer.is_enabled() {
                obs.tracer.emit(
                    "query_end",
                    vec![
                        ("ok", reply.succeeded.into()),
                        ("ms", ms.into()),
                        ("steps", reply.steps.into()),
                        ("slices", reply.slices.into()),
                    ],
                );
            }
            if reply.succeeded {
                for (name, term) in &reply.bindings {
                    writeln!(writer, "bind {name} = {term}")?;
                }
            }
            let status = if reply.succeeded { "ok" } else { "no" };
            match reply.datalog {
                Some(d) => writeln!(
                    writer,
                    "done {status} steps={} heap={} slices={} answers={} rounds={} facts={}",
                    reply.steps, reply.heap_high_water, reply.slices, d.answers, d.rounds, d.facts,
                ),
                None => writeln!(
                    writer,
                    "done {status} steps={} heap={} slices={}",
                    reply.steps, reply.heap_high_water, reply.slices,
                ),
            }
        }
        Err(e) => {
            obs.query_errors.inc();
            if obs.tracer.is_enabled() {
                obs.tracer
                    .emit("query_end", vec![("error", e.code().into())]);
            }
            write_err(writer, &e)
        }
    }
}

/// The `metrics` command: a byte-counted Prometheus exposition frame,
/// mirroring the `load` payload framing so the body may span lines.
fn cmd_metrics(writer: &mut TcpStream, state: &ServerState) -> io::Result<()> {
    let body = scrape(state);
    writeln!(writer, "ok {}", body.len())?;
    writer.write_all(body.as_bytes())
}

/// The `trace` command. `on`/`off` toggle the **server-global** ring (the
/// trace is a server diagnostic, not a per-tenant stream — sessions share
/// one ring); `dump` drains it as byte-counted JSONL.
fn cmd_trace(writer: &mut TcpStream, state: &ServerState, arg: &str) -> io::Result<()> {
    match arg.trim() {
        "on" => {
            state.obs.tracer.set_enabled(true);
            writeln!(writer, "ok trace=on")
        }
        "off" => {
            state.obs.tracer.set_enabled(false);
            writeln!(writer, "ok trace=off")
        }
        "dump" => {
            let body = state.obs.tracer.jsonl(true);
            writeln!(writer, "ok {}", body.len())?;
            writer.write_all(body.as_bytes())
        }
        _ => writeln!(writer, "err proto usage: trace on|off|dump"),
    }
}

/// Samples the scrape-time gauges and renders the registry.
fn scrape(state: &ServerState) -> String {
    state.obs.scrape(
        &state.cache.stats(),
        state.active_sessions.load(Ordering::SeqCst),
        state.shed.load(Ordering::Relaxed),
        state.recovered,
        state.store.as_ref().map(|s| s.stats()).as_ref(),
    )
}

/// The `--metrics-addr` listener: minimal HTTP/1.0, one response per
/// connection, every request answered with the current exposition. The
/// accept socket is non-blocking so the loop can poll the stop flag —
/// shutdown needs no nudge connection here.
fn metrics_loop(listener: TcpListener, state: &Arc<ServerState>) {
    while !state.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Switch the accepted socket back to blocking with a short
                // timeout: we only need to consume the request line.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let mut discard = [0u8; 1024];
                let _ = stream.read(&mut discard);
                let body = scrape(state);
                let _ = write!(
                    stream,
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len(),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(READ_TICK);
            }
            Err(_) => std::thread::sleep(READ_TICK),
        }
    }
}

fn cmd_engine(writer: &mut TcpStream, session: &mut Session, name: &str) -> io::Result<()> {
    let engine = match name.trim() {
        "sld" => EngineKind::Sld,
        "bottom-up" => EngineKind::BottomUp,
        _ => return writeln!(writer, "err proto usage: engine sld|bottom-up"),
    };
    session.set_engine(engine);
    writeln!(
        writer,
        "ok engine={}",
        if engine == EngineKind::Sld {
            "sld"
        } else {
            "bottom-up"
        }
    )
}

fn cmd_budget(writer: &mut TcpStream, session: &mut Session, args: &str) -> io::Result<()> {
    let mut budget = session.budget();
    let reply = match args.split_once(' ').map(|(k, v)| (k, v.trim())) {
        Some(("steps", "off")) => {
            budget.steps = None;
            Ok(())
        }
        Some(("steps", v)) => v.parse().map(|n| budget.steps = Some(n)),
        Some(("heap", "off")) => {
            budget.heap_cells = None;
            Ok(())
        }
        Some(("heap", v)) => v.parse().map(|n| budget.heap_cells = Some(n)),
        Some(("wall", "off")) => {
            budget.wall = None;
            Ok(())
        }
        Some(("wall", v)) => v
            .parse()
            .map(|ms| budget.wall = Some(Duration::from_millis(ms))),
        Some(("quantum", v)) => v.parse().map(|n| budget.quantum = n),
        _ => {
            return writeln!(
                writer,
                "err proto usage: budget steps|heap|wall <n|off> | budget quantum <n>"
            );
        }
    };
    match reply {
        Ok(()) => {
            session.set_budget(budget);
            writeln!(writer, "ok")
        }
        Err(_) => writeln!(writer, "err proto not a number: `{args}`"),
    }
}

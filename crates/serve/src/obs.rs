//! Serve-layer observability: the server-wide metrics registry, trace ring
//! and slow-query threshold, bundled so every connection thread shares one
//! set of handles.
//!
//! The bundle is created once in [`crate::Server::start`] and lives on the
//! server state. Query-path metrics (latency/steps/heap histograms, the
//! query/error/slice counters) are *pushed* as queries complete;
//! cache/pool/store/session figures are *sampled* at scrape time into
//! gauges, so the cache's own counters remain the single source of truth
//! and a scrape never double-counts. The tracer starts **disabled**: until
//! a client sends `trace on` the per-event cost is one relaxed atomic load.

use granlog_obs::{Counter, Histogram, Registry, Tracer, LATENCY_BUCKETS_MS, WORK_BUCKETS};
use std::sync::Arc;
use std::time::Instant;

/// Events the serve trace ring can hold before dropping the oldest.
const TRACE_CAPACITY: usize = 8192;

/// Shared observability bundle for one server instance.
///
/// Cloneable handles into one [`Registry`] plus the server-global trace
/// ring. All fields are cheap to touch from connection threads: counters
/// and histograms are lock-free, and the tracer's disabled fast path is a
/// single atomic load.
#[derive(Debug)]
pub struct ServeObs {
    /// The server's metrics registry; `metrics` scrapes render from here.
    pub registry: Arc<Registry>,
    /// Server-global event ring (`trace on|off|dump`, `--trace`).
    pub tracer: Arc<Tracer>,
    /// Boot instant, for the `stats` line's `uptime_ms`.
    pub started: Instant,
    /// Slow-query threshold in milliseconds (`--slow-ms`); `None` disables
    /// the slow-query log.
    pub slow_ms: Option<u64>,
    /// Queries answered (successes and `done no` both count; errors do not).
    pub queries: Arc<Counter>,
    /// Queries that ended in an `err` reply.
    pub query_errors: Arc<Counter>,
    /// Queries at or above the [`ServeObs::slow_ms`] threshold.
    pub slow_queries: Arc<Counter>,
    /// Programs accepted by `load`.
    pub loads: Arc<Counter>,
    /// Wall time per answered query, milliseconds.
    pub query_latency_ms: Arc<Histogram>,
    /// Head attempts (steps) per answered query.
    pub query_steps: Arc<Histogram>,
    /// Heap high water per answered query, cells.
    pub query_heap: Arc<Histogram>,
    /// Preemption slices consumed, summed over queries.
    pub slices: Arc<Counter>,
    /// Bottom-up fixpoint rounds, summed over datalog queries.
    pub datalog_rounds: Arc<Counter>,
    /// Facts derived by bottom-up evaluation, summed over datalog queries.
    pub datalog_facts: Arc<Counter>,
}

impl ServeObs {
    /// Builds the bundle: fresh registry, disabled tracer, all query-path
    /// metrics registered under their canonical `granlog_*` names.
    pub fn new(slow_ms: Option<u64>) -> ServeObs {
        let registry = Arc::new(Registry::new());
        let tracer = Arc::new(Tracer::disabled(TRACE_CAPACITY));
        ServeObs {
            queries: registry.counter("granlog_queries_total"),
            query_errors: registry.counter("granlog_query_errors_total"),
            slow_queries: registry.counter("granlog_slow_queries_total"),
            loads: registry.counter("granlog_loads_total"),
            query_latency_ms: registry.histogram("granlog_query_latency_ms", LATENCY_BUCKETS_MS),
            query_steps: registry.histogram("granlog_query_steps", WORK_BUCKETS),
            query_heap: registry.histogram("granlog_query_heap_cells", WORK_BUCKETS),
            slices: registry.counter("granlog_slices_total"),
            datalog_rounds: registry.counter("granlog_datalog_rounds_total"),
            datalog_facts: registry.counter("granlog_datalog_derived_facts_total"),
            registry,
            tracer,
            started: Instant::now(),
            slow_ms,
        }
    }

    /// Milliseconds since the server booted.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Samples cache/pool/session/store figures into scrape-time gauges and
    /// renders the whole registry as Prometheus text exposition. The inputs
    /// are passed in (rather than read here) so this module stays decoupled
    /// from the server's state layout.
    pub fn scrape(
        &self,
        cache: &crate::cache::CacheStats,
        sessions: u64,
        shed: u64,
        recovered: u64,
        store: Option<&granlog_store::StoreStats>,
    ) -> String {
        let g = |name: &str, v: i64| self.registry.gauge(name).set(v);
        g("granlog_cache_hits", cache.hits as i64);
        g("granlog_cache_misses", cache.misses as i64);
        g("granlog_cache_evictions", cache.evictions as i64);
        g("granlog_cache_entries", cache.entries as i64);
        g("granlog_pool_quarantined", cache.quarantined as i64);
        g("granlog_pool_retired", cache.retired as i64);
        g("granlog_leases_active", cache.leases_active as i64);
        g("granlog_sessions_active", sessions as i64);
        g("granlog_shed_connections", shed as i64);
        g("granlog_recovered_programs", recovered as i64);
        g("granlog_uptime_ms", self.uptime_ms() as i64);
        if let Some(d) = store {
            g("granlog_store_programs", d.programs as i64);
            g("granlog_wal_bytes", d.wal_bytes as i64);
            g("granlog_wal_records", d.wal_records as i64);
            g("granlog_wal_unsynced", d.unsynced_records as i64);
        }
        self.registry.render()
    }
}

//! One tenant's session: its loaded program, its budgets, and the quantum
//! slicing that keeps long queries preemptible.
//!
//! A session never hands the engine its whole step budget at once. It runs
//! the query in *quantum*-sized preemptible slices ([`Budget::steps`]),
//! resuming after each yield, which keeps every session responsive to
//! cancellation and bounds how long one tenant can monopolize a thread
//! between scheduling points. When the steps left in the session budget fit
//! inside one quantum, the final slice is issued *non-preemptible*
//! ([`Budget::hard_steps`]): the engine itself raises
//! [`EngineError::BudgetExceeded`] and performs its eager unwind (arena
//! truncated, trail emptied), so an over-budget query can never leave a
//! suspended machine pinning a large heap in the pool. The engine reports
//! the tail slice's limit; the session remaps it to the session-level limit
//! before surfacing the error.

use crate::cache::{ProgramEntry, TemplateCache};
use crate::ServeError;
use granlog_engine::{Budget, BudgetKind, EngineError, Solve};
use granlog_ir::parser::parse_term;
use granlog_obs::Tracer;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-session resource limits, applied to every query the session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionBudget {
    /// Total head attempts allowed per query (`None` = unlimited).
    pub steps: Option<u64>,
    /// Arena heap ceiling in cells per query (`None` = unlimited). Always a
    /// hard error when exceeded — waiting cannot reclaim memory.
    pub heap_cells: Option<usize>,
    /// Wall-clock allowance per query (`None` = unlimited). The deadline is
    /// taken at query start; each slice carries the time remaining, so the
    /// engine's own coarse-grained wall polling enforces it.
    pub wall: Option<Duration>,
    /// Steps per preemptible slice.
    pub quantum: u64,
}

impl Default for SessionBudget {
    fn default() -> Self {
        SessionBudget {
            steps: None,
            heap_cells: None,
            wall: None,
            quantum: 4096,
        }
    }
}

/// Result of loading a program into a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReply {
    /// Display hash of the normalized program (see [`ProgramEntry::hash`]).
    pub hash: u64,
    /// Clause count of the loaded program.
    pub clauses: usize,
    /// Whether the shared cache already held this program.
    pub cache_hit: bool,
}

/// Which evaluation engine a session's queries run on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// Top-down SLD resolution over a leased machine (first answer), the
    /// default.
    #[default]
    Sld,
    /// Bottom-up semi-naive Datalog evaluation over the entry's shared
    /// fact database (*all* answers).
    BottomUp,
}

/// Fixpoint statistics of a bottom-up query, riding along on the reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatalogReplyStats {
    /// Distinct answers to the goal.
    pub answers: u64,
    /// Semi-naive rounds of the (possibly cached) fixpoint.
    pub rounds: u64,
    /// IDB facts the fixpoint derived.
    pub facts: u64,
}

/// Result of a completed (non-erroring) query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// Did the query succeed?
    pub succeeded: bool,
    /// `(name, rendered term)` for each named query variable, source order.
    /// A bottom-up reply repeats the variable names once per answer.
    pub bindings: Vec<(String, String)>,
    /// Head attempts consumed (0 under the bottom-up engine).
    pub steps: u64,
    /// Arena high-water mark of this query, in cells (0 under the
    /// bottom-up engine — it does not lease a machine).
    pub heap_high_water: usize,
    /// Preemptible slices the query ran in (1 = never yielded; 0 under the
    /// bottom-up engine).
    pub slices: usize,
    /// Fixpoint statistics when the bottom-up engine answered, `None` for
    /// SLD replies.
    pub datalog: Option<DatalogReplyStats>,
}

/// One tenant's connection state: shared cache handle, loaded program,
/// budgets.
pub struct Session {
    cache: Arc<TemplateCache>,
    entry: Option<Arc<ProgramEntry>>,
    budget: SessionBudget,
    engine: EngineKind,
    /// Event sink for slice yield/resume events; `None` (the default) and a
    /// disabled tracer both cost one branch per slice.
    tracer: Option<Arc<Tracer>>,
}

impl Session {
    /// Opens a session over a shared cache with the given default budget.
    pub fn new(cache: Arc<TemplateCache>, budget: SessionBudget) -> Self {
        Session {
            cache,
            entry: None,
            budget,
            engine: EngineKind::default(),
            tracer: None,
        }
    }

    /// Installs (or removes) the trace sink for this session's slice
    /// events. The server installs its global ring on every connection; the
    /// ring's own enabled flag then gates recording.
    pub fn set_tracer(&mut self, tracer: Option<Arc<Tracer>>) {
        self.tracer = tracer;
    }

    /// This session's current budget.
    pub fn budget(&self) -> SessionBudget {
        self.budget
    }

    /// The engine this session's queries run on.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Switches the evaluation engine (applies to subsequent queries).
    /// Switching never invalidates anything: the loaded entry keeps both
    /// its SLD templates and any evaluated bottom-up database.
    pub fn set_engine(&mut self, engine: EngineKind) {
        self.engine = engine;
    }

    /// Replaces the session budget (applies to subsequent queries).
    pub fn set_budget(&mut self, budget: SessionBudget) {
        self.budget = SessionBudget {
            quantum: budget.quantum.max(1),
            ..budget
        };
    }

    /// Loads (or re-loads) program text through the shared template cache.
    ///
    /// # Errors
    ///
    /// [`ServeError::Parse`] for malformed program text.
    pub fn load(&mut self, source: &str) -> Result<LoadReply, ServeError> {
        let (entry, cache_hit) = self.cache.load(source)?;
        let reply = LoadReply {
            hash: entry.hash(),
            clauses: entry.clause_count(),
            cache_hit,
        };
        self.entry = Some(entry);
        Ok(reply)
    }

    /// The entry of the last successfully loaded program, if any. The server
    /// uses it to journal loads under the entry's normalized-text key.
    pub fn entry(&self) -> Option<&Arc<ProgramEntry>> {
        self.entry.as_ref()
    }

    /// Runs one query under the session budget, slicing by quantum.
    ///
    /// The whole solve runs under `catch_unwind`: a panic anywhere inside
    /// the engine (or injected by a failpoint) is caught here, the leased
    /// machine is **quarantined** — dropped, never pooled, its entry's pool
    /// generation bumped — and the session reports
    /// [`ServeError::Internal`] and keeps serving. One tenant's panic never
    /// takes down a neighbor's connection or poisons the shared pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoProgram`] before any successful [`Session::load`];
    /// [`ServeError::Parse`] for a malformed goal; [`ServeError::Engine`]
    /// for engine failures, including `BudgetExceeded` with the
    /// session-level limit when this query ran out of steps or heap;
    /// [`ServeError::Internal`] for a caught panic;
    /// [`ServeError::Fault`] for an injected lease fault;
    /// [`ServeError::Datalog`] under the bottom-up engine when the program
    /// or goal is outside the Datalog subset, or an injected `datalog.*`
    /// fault failed the fixpoint or a join.
    pub fn query(&mut self, goal_text: &str) -> Result<QueryReply, ServeError> {
        let entry = self.entry.clone().ok_or(ServeError::NoProgram)?;
        let (goal, var_names) = parse_term(goal_text)?;
        if self.engine == EngineKind::BottomUp {
            return query_bottom_up(&entry, &goal, &var_names);
        }
        let quantum = self.budget.quantum.max(1);
        let heap_cells = self.budget.heap_cells;
        let session_steps = self.budget.steps;
        let session_wall = self.budget.wall;
        // The wall deadline is per *query*, fixed now; slices get whatever
        // remains of it.
        let deadline = session_wall.map(|w| Instant::now() + w);

        let mut lease = entry.lease()?;
        let tracer = self.tracer.as_deref();
        // AssertUnwindSafe: on panic the closure's only captured state, the
        // leased machine, is quarantined below and never observed again.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sliced(
                lease.machine(),
                &goal,
                &var_names,
                session_steps,
                quantum,
                heap_cells,
                deadline,
                tracer,
            )
        }));
        match caught {
            Ok(Ok((outcome, slices))) => {
                let heap_high_water = lease.machine().stats().heap_high_water;
                Ok(QueryReply {
                    succeeded: outcome.succeeded,
                    bindings: outcome
                        .bindings
                        .iter()
                        .map(|(name, term)| (name.to_string(), term.to_string()))
                        .collect(),
                    steps: outcome.counters.head_attempts,
                    heap_high_water,
                    slices,
                    datalog: None,
                })
            }
            // The hard tail slice reports its own (possibly clamped) limit;
            // surface the session-level limit instead.
            Ok(Err(EngineError::BudgetExceeded {
                resource: BudgetKind::Steps,
                ..
            })) => Err(ServeError::Engine(EngineError::BudgetExceeded {
                resource: BudgetKind::Steps,
                limit: session_steps.unwrap_or(u64::MAX),
            })),
            // Same remap for wall time: the final slice saw only the
            // residue of the deadline; report the session's allowance (ms).
            Ok(Err(EngineError::BudgetExceeded {
                resource: BudgetKind::Wall,
                ..
            })) => Err(ServeError::Engine(EngineError::BudgetExceeded {
                resource: BudgetKind::Wall,
                limit: session_wall.map_or(u64::MAX, |w| w.as_millis() as u64),
            })),
            Ok(Err(e)) => {
                // An injected engine fault unwinds the machine like any
                // engine error, but the point of injecting it is to model
                // state we do not trust: quarantine anyway.
                if matches!(e, EngineError::Fault(_)) {
                    lease.quarantine();
                }
                Err(ServeError::Engine(e))
            }
            Err(payload) => {
                // The lease lives *outside* the caught closure, so the
                // unwind did not drop it: quarantine explicitly — the
                // machine was abandoned at an arbitrary panic point.
                lease.quarantine();
                Err(ServeError::Internal(format!(
                    "query panicked: {}",
                    panic_message(&*payload)
                )))
            }
        }
    }
}

/// The bottom-up query path: fetch (or build) the entry's shared fact
/// database and read *all* answers out of it. No machine lease, no
/// slicing — the fixpoint ran (or was cached) inside
/// [`ProgramEntry::datalog`], and reading answers out of an immutable
/// database is join work bounded by the database itself, not by a
/// tenant-controlled search space, so the session budgets do not apply.
fn query_bottom_up(
    entry: &Arc<ProgramEntry>,
    goal: &granlog_ir::Term,
    var_names: &[granlog_ir::Symbol],
) -> Result<QueryReply, ServeError> {
    let db = entry.datalog()?;
    let answers = db.query(goal, var_names).map_err(ServeError::Datalog)?;
    let mut bindings = Vec::new();
    for i in 0..answers.rows.len() {
        for (name, term) in answers.bindings(i) {
            bindings.push((name.to_string(), term.to_string()));
        }
    }
    let stats = db.stats();
    Ok(QueryReply {
        succeeded: answers.succeeded(),
        bindings,
        steps: 0,
        heap_high_water: 0,
        slices: 0,
        datalog: Some(DatalogReplyStats {
            answers: answers.rows.len() as u64,
            rounds: stats.rounds,
            facts: stats.derived_facts,
        }),
    })
}

/// The quantum-slicing solve loop, separated out so [`Session::query`] can
/// wrap exactly this much in `catch_unwind`. Returns the outcome plus the
/// number of slices the query ran in.
#[allow(clippy::too_many_arguments)]
fn run_sliced(
    machine: &mut granlog_engine::Machine<'static>,
    goal: &granlog_ir::Term,
    var_names: &[granlog_ir::Symbol],
    session_steps: Option<u64>,
    quantum: u64,
    heap_cells: Option<usize>,
    deadline: Option<Instant>,
    tracer: Option<&Tracer>,
) -> Result<(granlog_engine::QueryOutcome, usize), EngineError> {
    let mut slices = 1usize;
    let mut state = machine.solve_goal(
        goal,
        var_names,
        None,
        &next_slice(session_steps, 0, quantum, heap_cells, deadline),
    );
    loop {
        match state {
            Ok(Solve::Done(outcome)) => return Ok((outcome, slices)),
            Ok(Solve::Yield(token)) => {
                slices += 1;
                let used = machine.counters().head_attempts;
                if let Some(t) = tracer {
                    if t.is_enabled() {
                        t.emit(
                            "slice_yield",
                            vec![("slice", (slices - 1).into()), ("steps", used.into())],
                        );
                    }
                }
                let slice = next_slice(session_steps, used, quantum, heap_cells, deadline);
                if let Some(t) = tracer {
                    if t.is_enabled() {
                        t.emit("slice_resume", vec![("slice", slices.into())]);
                    }
                }
                state = machine.resume(token, None, &slice);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Renders a caught panic payload: panics carry a `&str` or `String`
/// message in practice; anything else gets a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// The budget for the next slice: a preemptible quantum while more than one
/// quantum of session steps remains, a **hard** tail slice once the
/// remainder fits (so the engine's own error path unwinds the machine).
///
/// The wall deadline rides along on every slice as the time remaining. A
/// preemptible slice whose wall residue expires *yields* (the engine
/// suspends on wall exhaustion when preemptible); the next slice then sees
/// zero remaining and is issued hard, so the engine's own
/// `BudgetExceeded { Wall }` path unwinds the machine.
fn next_slice(
    session_steps: Option<u64>,
    used: u64,
    quantum: u64,
    heap_cells: Option<usize>,
    deadline: Option<Instant>,
) -> Budget {
    let remaining_wall = deadline.map(|d| d.saturating_duration_since(Instant::now()));
    let wall_expired = remaining_wall.is_some_and(|r| r.is_zero());
    let mut slice = if wall_expired {
        // Past the deadline, the expired wall must be the budget that
        // fires: a step-bounded slice could raise `Steps` first and
        // misreport the failure class. Step-unbounded is safe — the engine
        // polls the wall within a few hundred resolutions.
        let mut tail = Budget::UNLIMITED;
        tail.preemptible = false;
        tail
    } else {
        match session_steps {
            None => Budget::steps(quantum),
            Some(limit) => {
                let remaining = limit.saturating_sub(used);
                if remaining > quantum {
                    Budget::steps(quantum)
                } else {
                    // `hard_steps` clamps to ≥ 1, so a session already at
                    // its limit errors after at most one more goal.
                    Budget::hard_steps(remaining)
                }
            }
        }
    };
    slice.heap_cells = heap_cells;
    slice.wall = remaining_wall;
    slice
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PoolConfig;
    use granlog_engine::MachineConfig;

    const COUNT: &str = r#"
        count(0).
        count(N) :- N > 0, N1 is N - 1, count(N1).
    "#;

    fn session(budget: SessionBudget) -> Session {
        let cache = Arc::new(TemplateCache::new(
            4,
            MachineConfig::default(),
            PoolConfig::default(),
        ));
        Session::new(cache, budget)
    }

    #[test]
    fn query_before_load_is_an_error() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let mut s = session(SessionBudget::default());
        assert!(matches!(s.query("true"), Err(ServeError::NoProgram)));
    }

    #[test]
    fn small_quantum_slices_but_matches_the_answer() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let mut fine = session(SessionBudget {
            quantum: 7,
            ..SessionBudget::default()
        });
        fine.load(COUNT).unwrap();
        let sliced = fine.query("count(200)").unwrap();
        assert!(sliced.succeeded);
        assert!(
            sliced.slices > 10,
            "quantum 7 must slice: {}",
            sliced.slices
        );

        let mut coarse = session(SessionBudget::default());
        coarse.load(COUNT).unwrap();
        let whole = coarse.query("count(200)").unwrap();
        assert_eq!(whole.slices, 1);
        assert_eq!(sliced.steps, whole.steps, "slicing must not change work");
        assert_eq!(sliced.bindings, whole.bindings);
    }

    #[test]
    fn step_budget_is_enforced_and_remapped_to_the_session_limit() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let mut s = session(SessionBudget {
            steps: Some(50),
            quantum: 8,
            ..SessionBudget::default()
        });
        s.load(COUNT).unwrap();
        match s.query("count(100000)") {
            Err(ServeError::Engine(EngineError::BudgetExceeded {
                resource: BudgetKind::Steps,
                limit,
            })) => assert_eq!(
                limit, 50,
                "limit must be the session's, not the tail slice's"
            ),
            other => panic!("expected a step-budget error, got {other:?}"),
        }
        // The machine unwound and went back to the pool; the session works.
        let ok = s.query("count(3)").unwrap();
        assert!(ok.succeeded);
    }

    #[test]
    fn wall_budget_is_enforced_and_remapped_to_the_session_allowance() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let mut s = session(SessionBudget {
            wall: Some(Duration::from_millis(30)),
            quantum: 512,
            ..SessionBudget::default()
        });
        s.load("loop :- loop.").unwrap();
        let started = Instant::now();
        match s.query("loop") {
            Err(ServeError::Engine(EngineError::BudgetExceeded {
                resource: BudgetKind::Wall,
                limit,
            })) => assert_eq!(limit, 30, "limit must be the session's ms allowance"),
            other => panic!("expected a wall-budget error, got {other:?}"),
        }
        // Generous bound: the engine polls wall coarsely, but an infinite
        // loop must still be cut within a couple of orders of the budget.
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "wall cut took {:?}",
            started.elapsed()
        );
        // The machine unwound; the session keeps serving.
        let mut ok = s.budget();
        ok.wall = None;
        s.set_budget(ok);
        s.load(COUNT).unwrap();
        assert!(s.query("count(3)").unwrap().succeeded);
    }

    #[test]
    fn heap_budget_is_enforced() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let mut s = session(SessionBudget {
            heap_cells: Some(256),
            ..SessionBudget::default()
        });
        s.load(
            r#"
            build(0, []).
            build(N, [N|T]) :- N > 0, N1 is N - 1, build(N1, T).
            "#,
        )
        .unwrap();
        match s.query("build(100000, L)") {
            Err(ServeError::Engine(EngineError::BudgetExceeded {
                resource: BudgetKind::HeapCells,
                ..
            })) => {}
            other => panic!("expected a heap-budget error, got {other:?}"),
        }
        assert!(s.query("build(3, L)").unwrap().succeeded);
    }

    /// Panic isolation end to end: an injected panic inside the solve is
    /// caught, surfaces as `ServeError::Internal`, quarantines the machine,
    /// and the session keeps answering. Needs the failpoints feature to
    /// have a way to panic mid-query on demand.
    #[test]
    #[cfg(feature = "failpoints")]
    fn an_injected_panic_is_caught_and_quarantines_the_machine() {
        let _excl = crate::faultsync::exclusive();
        let mut s = session(SessionBudget::default());
        s.load(COUNT).unwrap();
        assert!(s.query("count(3)").unwrap().succeeded);

        granlog_fault::arm("engine.solve", granlog_fault::Action::Panic, 1.0);
        let err = s.query("count(3)").unwrap_err();
        granlog_fault::disarm("engine.solve");
        assert!(matches!(err, ServeError::Internal(_)), "{err:?}");
        assert_eq!(err.code(), "internal");
        assert!(err.to_string().contains("engine.solve"), "{err}");
        let stats = s.cache.stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.leases_active, 0, "no lease may leak past a panic");

        // The session (and the shared pool) keep working.
        assert!(s.query("count(3)").unwrap().succeeded);
    }

    /// An injected lease fault is a typed error, not a panic, and the
    /// session survives it.
    #[test]
    #[cfg(feature = "failpoints")]
    fn an_injected_lease_fault_is_typed_and_recoverable() {
        let _excl = crate::faultsync::exclusive();
        let mut s = session(SessionBudget::default());
        s.load(COUNT).unwrap();
        granlog_fault::arm("serve.lease", granlog_fault::Action::Error, 1.0);
        let err = s.query("count(3)").unwrap_err();
        granlog_fault::disarm("serve.lease");
        assert_eq!(err, ServeError::Fault("serve.lease"));
        assert_eq!(err.code(), "fault");
        assert!(s.query("count(3)").unwrap().succeeded);
    }

    #[test]
    fn bindings_render_with_source_names() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let mut s = session(SessionBudget::default());
        s.load("pair(1, two).").unwrap();
        let reply = s.query("pair(X, Y)").unwrap();
        assert!(reply.succeeded);
        assert_eq!(
            reply.bindings,
            vec![("X".into(), "1".into()), ("Y".into(), "two".into())]
        );
    }

    const REACH: &str = r#"
        edge(a, b).
        edge(b, c).
        reach(a).
        reach(T) :- edge(S, T), reach(S).
        stuck(X) :- edge(X, _), \+ reach(X).
    "#;

    #[test]
    fn bottom_up_engine_returns_every_answer_and_caches_the_database() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let mut s = session(SessionBudget::default());
        s.load(REACH).unwrap();
        assert_eq!(s.engine(), EngineKind::Sld);
        s.set_engine(EngineKind::BottomUp);

        let reply = s.query("reach(X)").unwrap();
        assert!(reply.succeeded);
        let stats = reply.datalog.expect("bottom-up replies carry stats");
        assert_eq!(stats.answers, 3);
        assert!(stats.rounds >= 2, "recursion needs delta rounds");
        let mut values: Vec<_> = reply.bindings.iter().map(|(_, t)| t.clone()).collect();
        values.sort();
        assert_eq!(values, ["a", "b", "c"]);
        assert!(
            reply.bindings.iter().all(|(n, _)| n == "X"),
            "one bind per answer, all for X"
        );
        assert_eq!(
            (reply.steps, reply.heap_high_water, reply.slices),
            (0, 0, 0)
        );

        // The evaluated database is cached on the shared entry: a second
        // query reuses it (same fixpoint stats object, no recompute).
        let again = s.query("stuck(X)").unwrap();
        assert!(!again.succeeded, "every forward node is reached");
        assert_eq!(again.datalog.unwrap().rounds, stats.rounds);

        // Switching back to SLD restores first-solution semantics.
        s.set_engine(EngineKind::Sld);
        let sld = s.query("reach(X)").unwrap();
        assert!(sld.succeeded);
        assert_eq!(sld.bindings.len(), 1, "SLD returns the first solution");
        assert!(sld.datalog.is_none());
    }

    #[test]
    fn bottom_up_rejection_is_typed_and_the_session_survives() {
        #[cfg(feature = "failpoints")]
        let _shared = crate::faultsync::shared();
        let mut s = session(SessionBudget::default());
        s.load(COUNT).unwrap();
        s.set_engine(EngineKind::BottomUp);
        let err = s.query("count(3)").unwrap_err();
        assert!(matches!(err, ServeError::Datalog(_)), "{err:?}");
        assert_eq!(err.code(), "engine");
        assert!(err.to_string().contains("not a Datalog program"), "{err}");

        // The SLD path still answers on the same session and machines were
        // never involved, so nothing is quarantined.
        s.set_engine(EngineKind::Sld);
        assert!(s.query("count(3)").unwrap().succeeded);
        assert_eq!(s.cache.stats().quarantined, 0);
    }
}

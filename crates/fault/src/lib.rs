//! # granlog-fault
//!
//! A tiny failpoint facility for fault-injection testing, written locally
//! (like the other vendored stand-ins) because the build environment is
//! offline. The API is deliberately small:
//!
//! * code under test marks its risky seams with **named failpoints** —
//!   `if granlog_fault::should_fail("serve.lease") { return Err(...) }` —
//!   choosing its own typed error for the injected failure;
//! * a test (or the `GRANLOG_FAILPOINTS` environment variable) arms a
//!   failpoint with an [`Action`] — inject an **error**, **panic**, or
//!   **delay** — and a firing probability drawn from a **deterministic
//!   seeded** per-failpoint RNG, so chaos runs are reproducible;
//! * everything is gated behind the `failpoints` cargo feature. Compiled
//!   out, [`should_fail`] is an `#[inline(always)]` constant `false` and the
//!   registry does not exist: release builds are observationally identical
//!   to builds that never heard of this crate.
//!
//! # Environment knob
//!
//! With the feature enabled, the registry is seeded once, lazily, from
//! `GRANLOG_FAILPOINTS` (same syntax as [`configure`]:
//! `name=action[:prob][;name=action[:prob]]...`, actions `error`, `panic`,
//! `delay(<ms>)`) and `GRANLOG_FAULT_SEED` (a `u64`). This lets
//! `granlog serve`, built with `--features failpoints`, be chaos-tested
//! from the outside without any CLI surface.

#![warn(missing_docs)]

use std::time::Duration;

/// What an armed failpoint injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The call site returns its own typed error ([`should_fail`] → `true`).
    Error,
    /// The evaluation panics with a message naming the failpoint.
    Panic,
    /// The evaluation sleeps, then proceeds normally (`should_fail` →
    /// `false`): exercises timeout and slow-peer paths.
    Delay(Duration),
}

/// Counters of one failpoint's activity, for test assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailpointStats {
    /// Times the failpoint was evaluated (site reached while armed).
    pub evaluated: u64,
    /// Times it actually fired (error returned, panic raised, delay slept).
    pub fired: u64,
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{Action, FailpointStats};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};
    use std::time::Duration;

    struct Failpoint {
        action: Action,
        /// Firing probability in [0, 1].
        probability: f64,
        /// Per-failpoint splitmix64 state, derived from the global seed and
        /// the failpoint name so arming order does not change the stream.
        rng: u64,
        stats: FailpointStats,
    }

    #[derive(Default)]
    struct Registry {
        points: HashMap<String, Failpoint>,
        seed: u64,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut reg = Registry {
                points: HashMap::new(),
                seed: std::env::var("GRANLOG_FAULT_SEED")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0x9E37_79B9_7F4A_7C15),
            };
            if let Ok(spec) = std::env::var("GRANLOG_FAILPOINTS") {
                // A bad env spec must not take the process down — it is a
                // debugging knob, not an interface contract.
                let _ = apply_spec(&mut reg, &spec);
            }
            Mutex::new(reg)
        })
    }

    fn fnv64(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn parse_action(text: &str) -> Result<Action, String> {
        if text == "error" {
            return Ok(Action::Error);
        }
        if text == "panic" {
            return Ok(Action::Panic);
        }
        if let Some(ms) = text
            .strip_prefix("delay(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad delay milliseconds in {text:?}"))?;
            return Ok(Action::Delay(Duration::from_millis(ms)));
        }
        Err(format!(
            "unknown action {text:?} (expected error, panic, or delay(<ms>))"
        ))
    }

    fn apply_spec(reg: &mut Registry, spec: &str) -> Result<usize, String> {
        let mut armed = 0;
        for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
            let (name, rest) = part
                .split_once('=')
                .ok_or_else(|| format!("missing `=` in failpoint spec {part:?}"))?;
            let (action, probability) = match rest.rsplit_once(':') {
                // `delay(5):0.5` splits at the last colon; `delay(5)` alone
                // has none. A non-numeric tail is part of the action.
                Some((action, prob)) if prob.trim().parse::<f64>().is_ok() => {
                    (action, prob.trim().parse::<f64>().unwrap_or(1.0))
                }
                _ => (rest, 1.0),
            };
            arm_locked(reg, name.trim(), parse_action(action.trim())?, probability);
            armed += 1;
        }
        Ok(armed)
    }

    fn arm_locked(reg: &mut Registry, name: &str, action: Action, probability: f64) {
        let rng = reg.seed ^ fnv64(name.as_bytes());
        reg.points.insert(
            name.to_string(),
            Failpoint {
                action,
                probability: probability.clamp(0.0, 1.0),
                rng,
                stats: FailpointStats::default(),
            },
        );
    }

    fn lock() -> std::sync::MutexGuard<'static, Registry> {
        // A panic while the registry lock was held (an armed `panic` action
        // never panics inside the lock, but a test harness might) must not
        // poison every later evaluation: the map holds plain data.
        registry().lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn configure(spec: &str) -> Result<usize, String> {
        apply_spec(&mut lock(), spec)
    }

    pub fn arm(name: &str, action: Action, probability: f64) {
        arm_locked(&mut lock(), name, action, probability);
    }

    pub fn disarm(name: &str) {
        lock().points.remove(name);
    }

    pub fn disarm_all() {
        lock().points.clear();
    }

    pub fn set_seed(seed: u64) {
        let mut reg = lock();
        reg.seed = seed;
        let names: Vec<String> = reg.points.keys().cloned().collect();
        for name in names {
            let rng = seed ^ fnv64(name.as_bytes());
            if let Some(point) = reg.points.get_mut(&name) {
                point.rng = rng;
            }
        }
    }

    pub fn stats(name: &str) -> FailpointStats {
        lock().points.get(name).map(|p| p.stats).unwrap_or_default()
    }

    pub fn should_fail(name: &str) -> bool {
        // One short critical section per evaluation of an *armed* process;
        // the common case (nothing armed) is a map lookup and out.
        let action = {
            let mut reg = lock();
            let Some(point) = reg.points.get_mut(name) else {
                return false;
            };
            point.stats.evaluated += 1;
            let draw = (splitmix64(&mut point.rng) >> 11) as f64 / (1u64 << 53) as f64;
            if draw >= point.probability {
                return false;
            }
            point.stats.fired += 1;
            point.action
        };
        // Panic and sleep OUTSIDE the registry lock.
        match action {
            Action::Error => true,
            Action::Panic => panic!("injected panic at failpoint `{name}`"),
            Action::Delay(d) => {
                std::thread::sleep(d);
                false
            }
        }
    }
}

/// Evaluates a failpoint. Returns `true` when an armed `error` action fires
/// — the call site then returns its own typed error. An armed `panic`
/// action panics here; an armed `delay` sleeps and returns `false`. With the
/// `failpoints` feature off this is a constant `false` the optimizer
/// removes.
#[cfg(feature = "failpoints")]
pub fn should_fail(name: &str) -> bool {
    imp::should_fail(name)
}

/// See the feature-enabled variant; compiled out, always `false`.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn should_fail(_name: &str) -> bool {
    false
}

/// Arms failpoints from a spec string:
/// `name=action[:prob][;name=action[:prob]]...` with actions `error`,
/// `panic` and `delay(<ms>)`, probability defaulting to 1.0. Returns the
/// number of failpoints armed.
///
/// # Errors
///
/// Returns a description of the first malformed entry.
#[cfg(feature = "failpoints")]
pub fn configure(spec: &str) -> Result<usize, String> {
    imp::configure(spec)
}

/// See the feature-enabled variant; compiled out, arms nothing.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn configure(_spec: &str) -> Result<usize, String> {
    Ok(0)
}

/// Arms one failpoint with an action and firing probability (clamped to
/// `[0, 1]`). Re-arming resets its RNG stream and counters.
#[cfg(feature = "failpoints")]
pub fn arm(name: &str, action: Action, probability: f64) {
    imp::arm(name, action, probability);
}

/// See the feature-enabled variant; compiled out, arms nothing.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn arm(_name: &str, _action: Action, _probability: f64) {}

/// Disarms one failpoint.
#[cfg(feature = "failpoints")]
pub fn disarm(name: &str) {
    imp::disarm(name);
}

/// See the feature-enabled variant; compiled out, a no-op.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn disarm(_name: &str) {}

/// Disarms every failpoint (chaos tests call this between scenarios).
#[cfg(feature = "failpoints")]
pub fn disarm_all() {
    imp::disarm_all();
}

/// See the feature-enabled variant; compiled out, a no-op.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn disarm_all() {}

/// Sets the global seed and re-derives every armed failpoint's RNG stream,
/// making a chaos scenario reproducible end to end.
#[cfg(feature = "failpoints")]
pub fn set_seed(seed: u64) {
    imp::set_seed(seed);
}

/// See the feature-enabled variant; compiled out, a no-op.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn set_seed(_seed: u64) {}

/// Evaluation/firing counters of one failpoint (zeroes when unarmed or
/// compiled out).
#[cfg(feature = "failpoints")]
pub fn stats(name: &str) -> FailpointStats {
    imp::stats(name)
}

/// See the feature-enabled variant; compiled out, always zeroes.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn stats(_name: &str) -> FailpointStats {
    FailpointStats::default()
}

/// Returns an injected-fault error for a failpoint if it fires, in one step:
/// `fail_or(name, || MyError::Fault(name))?`.
///
/// # Errors
///
/// The error built by `err` when the failpoint fires with [`Action::Error`].
#[inline(always)]
pub fn fail_or<E>(name: &str, err: impl FnOnce() -> E) -> Result<(), E> {
    if should_fail(name) {
        return Err(err());
    }
    Ok(())
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    /// The registry is process-global; tests touching it serialize here.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn unarmed_failpoints_never_fire() {
        let _g = guard();
        disarm_all();
        assert!(!should_fail("nothing.here"));
        assert_eq!(stats("nothing.here"), FailpointStats::default());
    }

    #[test]
    fn error_actions_fire_with_probability_one() {
        let _g = guard();
        disarm_all();
        arm("t.error", Action::Error, 1.0);
        for _ in 0..10 {
            assert!(should_fail("t.error"));
        }
        let s = stats("t.error");
        assert_eq!((s.evaluated, s.fired), (10, 10));
        disarm("t.error");
        assert!(!should_fail("t.error"));
    }

    #[test]
    fn probability_is_deterministic_under_a_seed() {
        let _g = guard();
        disarm_all();
        let pattern = |seed: u64| -> Vec<bool> {
            arm("t.prob", Action::Error, 0.5);
            set_seed(seed);
            (0..64).map(|_| should_fail("t.prob")).collect()
        };
        let a = pattern(42);
        let b = pattern(42);
        assert_eq!(a, b, "same seed must reproduce the firing pattern");
        let c = pattern(43);
        assert_ne!(a, c, "a different seed must (overwhelmingly) differ");
        let fired = a.iter().filter(|f| **f).count();
        assert!(
            (8..=56).contains(&fired),
            "p=0.5 over 64 draws fired {fired} times"
        );
        disarm_all();
    }

    #[test]
    fn panic_actions_panic_with_the_failpoint_name() {
        let _g = guard();
        disarm_all();
        arm("t.panic", Action::Panic, 1.0);
        let result = std::panic::catch_unwind(|| should_fail("t.panic"));
        disarm_all();
        let message = *result
            .expect_err("armed panic action must panic")
            .downcast::<String>()
            .expect("panic payload is the formatted message");
        assert!(message.contains("t.panic"), "{message}");
    }

    #[test]
    fn delay_actions_sleep_then_proceed() {
        let _g = guard();
        disarm_all();
        arm(
            "t.delay",
            Action::Delay(std::time::Duration::from_millis(20)),
            1.0,
        );
        let start = std::time::Instant::now();
        assert!(!should_fail("t.delay"), "a delay is not an error");
        assert!(start.elapsed() >= std::time::Duration::from_millis(15));
        assert_eq!(stats("t.delay").fired, 1);
        disarm_all();
    }

    #[test]
    fn spec_strings_parse_and_arm() {
        let _g = guard();
        disarm_all();
        let armed = configure("a=error;b=panic:0.25; c=delay(15):0.5 ").expect("well-formed spec");
        assert_eq!(armed, 3);
        assert!(should_fail("a"));
        assert!(configure("oops").is_err());
        assert!(configure("x=explode").is_err());
        assert!(configure("x=delay(abc)").is_err());
        disarm_all();
    }

    #[test]
    fn fail_or_returns_the_typed_error() {
        let _g = guard();
        disarm_all();
        arm("t.failor", Action::Error, 1.0);
        let r: Result<(), &'static str> = fail_or("t.failor", || "boom");
        assert_eq!(r, Err("boom"));
        disarm_all();
        let r: Result<(), &'static str> = fail_or("t.failor", || "boom");
        assert_eq!(r, Ok(()));
    }
}

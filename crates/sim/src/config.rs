//! Simulated machine configurations: processor count and task-management
//! overhead models.
//!
//! The paper's experiments compare two real systems whose main difference, for
//! granularity purposes, is how expensive task creation and management is:
//! ROLOG (process-based reduce-or model, relatively high overhead) and
//! &-Prolog (RAP-WAM based, quite low overhead), both on a 4-processor Sequent
//! Symmetry. We model a system by four scalar overheads expressed in the same
//! abstract work units the execution engine counts.

use serde::{Deserialize, Serialize};

/// Task-management overheads, in work units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Work the parent performs to create one child task (allocation,
    /// publishing the goal, bookkeeping).
    pub spawn_parent: f64,
    /// Work performed on the processor that picks a task up before the task's
    /// own work starts (scheduling, environment setup, possible migration).
    pub task_startup: f64,
    /// Work the parent performs per fork when it resumes after the join.
    pub join: f64,
    /// Dispatch cost charged every time a processor takes work from the ready
    /// queue (including resumptions).
    pub dispatch: f64,
}

impl OverheadModel {
    /// An idealised machine with free task management.
    pub fn zero() -> Self {
        OverheadModel {
            spawn_parent: 0.0,
            task_startup: 0.0,
            join: 0.0,
            dispatch: 0.0,
        }
    }

    /// A ROLOG-like profile: process-based task creation with relatively high
    /// creation and scheduling costs.
    pub fn rolog_like() -> Self {
        OverheadModel {
            spawn_parent: 25.0,
            task_startup: 20.0,
            join: 7.0,
            dispatch: 8.0,
        }
    }

    /// An &-Prolog-like profile: goal-stack based task creation with low
    /// overheads.
    pub fn and_prolog_like() -> Self {
        OverheadModel {
            spawn_parent: 3.0,
            task_startup: 2.0,
            join: 1.0,
            dispatch: 1.0,
        }
    }

    /// Total overhead attributable to one spawned task (used by the analysis
    /// side to pick the threshold `W`).
    pub fn per_task_overhead(&self) -> f64 {
        self.spawn_parent + self.task_startup + self.join + self.dispatch
    }

    /// Uniformly scales every overhead component.
    pub fn scaled(&self, factor: f64) -> Self {
        OverheadModel {
            spawn_parent: self.spawn_parent * factor,
            task_startup: self.task_startup * factor,
            join: self.join * factor,
            dispatch: self.dispatch * factor,
        }
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel::and_prolog_like()
    }
}

/// A simulated machine: a number of identical processors plus an overhead
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of processors.
    pub processors: usize,
    /// Task-management overheads.
    pub overhead: OverheadModel,
}

impl SimConfig {
    /// A machine with `processors` processors and the given overhead model.
    pub fn new(processors: usize, overhead: OverheadModel) -> Self {
        assert!(processors >= 1, "a machine needs at least one processor");
        SimConfig {
            processors,
            overhead,
        }
    }

    /// The 4-processor ROLOG-like configuration used for Table 1.
    pub fn rolog4() -> Self {
        SimConfig::new(4, OverheadModel::rolog_like())
    }

    /// The 4-processor &-Prolog-like configuration used for Table 2.
    pub fn and_prolog4() -> Self {
        SimConfig::new(4, OverheadModel::and_prolog_like())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::and_prolog4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_relative_magnitudes() {
        let rolog = OverheadModel::rolog_like();
        let andp = OverheadModel::and_prolog_like();
        assert!(rolog.per_task_overhead() > 5.0 * andp.per_task_overhead());
        assert_eq!(OverheadModel::zero().per_task_overhead(), 0.0);
    }

    #[test]
    fn scaling() {
        let m = OverheadModel::and_prolog_like().scaled(2.0);
        assert_eq!(m.spawn_parent, 6.0);
        assert_eq!(
            m.per_task_overhead(),
            2.0 * OverheadModel::and_prolog_like().per_task_overhead()
        );
    }

    #[test]
    fn configs() {
        assert_eq!(SimConfig::rolog4().processors, 4);
        assert_eq!(SimConfig::and_prolog4().processors, 4);
        assert_eq!(SimConfig::default(), SimConfig::and_prolog4());
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        SimConfig::new(0, OverheadModel::zero());
    }
}

//! Discrete-event scheduling of a fork-join task tree on P processors.
//!
//! The simulator models the execution of the task tree recorded by the engine
//! on a shared-memory multiprocessor:
//!
//! * a task runs on one processor at a time, executing its work segments;
//! * when it reaches a fork it pays `spawn_parent` per child (sequentially, on
//!   its own processor), the children join the ready queue, and the parent
//!   *blocks* — releasing its processor — until all children have finished;
//! * idle processors take ready tasks in FIFO order, paying `dispatch` plus
//!   (for a task's first activation) `task_startup`;
//! * when the last child of a fork finishes, the parent re-enters the ready
//!   queue and pays `join` when it resumes.
//!
//! The resulting makespan is the simulated execution time. With one processor
//! and a zero overhead model it equals the tree's total work; with unlimited
//! processors and zero overhead it approaches the critical path.

use crate::config::SimConfig;
use granlog_engine::{Segment, TaskId, TaskTree};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The result of simulating a task tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Simulated execution time (makespan), in work units.
    pub makespan: f64,
    /// Total useful work (the tree's sequential work).
    pub total_work: f64,
    /// Total overhead work added by task management.
    pub total_overhead: f64,
    /// Busy time (work + overhead) per processor.
    pub processor_busy: Vec<f64>,
    /// Number of tasks spawned (excluding the root).
    pub spawned_tasks: usize,
    /// The speedup over running the same tree's work sequentially with no
    /// overhead (`total_work / makespan`).
    pub speedup_vs_sequential: f64,
    /// Average processor utilisation (busy time / (P · makespan)).
    pub utilisation: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Ready {
    time: f64,
    sequence: u64,
    task: TaskId,
    segment: usize,
    resume: bool,
}

impl Eq for Ready {}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, sequence): earlier first, FIFO within equal times.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Default)]
struct TaskState {
    /// Parent task and the index of the fork segment waiting on this task.
    parent: Option<(TaskId, usize)>,
    /// Outstanding joins: (fork segment index, children still running, latest
    /// child finish time seen so far).
    pending: Vec<(usize, usize, f64)>,
}

/// Simulates the execution of `tree` on the machine described by `config`.
pub fn simulate(tree: &TaskTree, config: &SimConfig) -> SimOutcome {
    let n_tasks = tree.len();
    let mut states: Vec<TaskState> = vec![TaskState::default(); n_tasks];
    for (id, task) in tree.tasks().iter().enumerate() {
        for (seg_idx, seg) in task.segments.iter().enumerate() {
            if let Segment::Fork(children) = seg {
                for c in children.ids() {
                    states[c].parent = Some((id, seg_idx));
                }
                states[id].pending.push((seg_idx, children.count, 0.0));
            }
        }
    }

    let mut proc_free = vec![0.0f64; config.processors];
    let mut proc_busy = vec![0.0f64; config.processors];
    let mut ready: BinaryHeap<Ready> = BinaryHeap::new();
    let mut sequence = 0u64;
    let mut total_overhead = 0.0f64;
    let mut makespan = 0.0f64;

    ready.push(Ready {
        time: 0.0,
        sequence: 0,
        task: tree.root(),
        segment: 0,
        resume: false,
    });

    while let Some(activation) = ready.pop() {
        // Pick the processor that becomes free earliest.
        let (proc, _) = proc_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(Ordering::Equal))
            .expect("at least one processor");
        let mut now = activation.time.max(proc_free[proc]);
        let busy_start = now;

        // Dispatch / startup / join overheads for this activation.
        let mut overhead = config.overhead.dispatch;
        if activation.resume {
            overhead += config.overhead.join;
        } else if activation.task != tree.root() {
            overhead += config.overhead.task_startup;
        }
        now += overhead;
        total_overhead += overhead;

        // Run segments until the task blocks on a fork or finishes.
        let task = tree.task(activation.task);
        let mut seg_idx = activation.segment;
        let mut blocked = false;
        while seg_idx < task.segments.len() {
            match &task.segments[seg_idx] {
                Segment::Work(w) => {
                    now += w;
                    seg_idx += 1;
                }
                Segment::Fork(children) => {
                    for child in children.ids() {
                        now += config.overhead.spawn_parent;
                        total_overhead += config.overhead.spawn_parent;
                        sequence += 1;
                        ready.push(Ready {
                            time: now,
                            sequence,
                            task: child,
                            segment: 0,
                            resume: false,
                        });
                    }
                    // The parent blocks; it will resume at the segment after
                    // the fork once every child has completed.
                    blocked = true;
                    break;
                }
            }
        }

        proc_free[proc] = now;
        proc_busy[proc] += now - busy_start;
        makespan = makespan.max(now);

        if blocked {
            continue;
        }

        // Task finished: notify the parent's fork, if any. (Only the direct
        // parent is notified; ancestors resume when the parent itself later
        // finishes.)
        if let Some((parent, fork_seg)) = states[activation.task].parent {
            let slot = states[parent]
                .pending
                .iter_mut()
                .find(|(seg, _, _)| *seg == fork_seg)
                .expect("fork bookkeeping exists");
            slot.1 -= 1;
            slot.2 = slot.2.max(now);
            if slot.1 == 0 {
                let resume_time = slot.2;
                sequence += 1;
                ready.push(Ready {
                    time: resume_time,
                    sequence,
                    task: parent,
                    segment: fork_seg + 1,
                    resume: true,
                });
            }
        }
    }

    let total_work = tree.total_work();
    let utilisation = if makespan > 0.0 {
        proc_busy.iter().sum::<f64>() / (config.processors as f64 * makespan)
    } else {
        1.0
    };
    SimOutcome {
        makespan,
        total_work,
        total_overhead,
        processor_busy: proc_busy,
        spawned_tasks: tree.spawned_tasks(),
        speedup_vs_sequential: if makespan > 0.0 {
            total_work / makespan
        } else {
            1.0
        },
        utilisation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OverheadModel;
    use granlog_engine::TaskRecorder;

    /// root: 10 work, fork(a: 30, b: 50), then 5 more work.
    fn sample_tree() -> TaskTree {
        let mut r = TaskRecorder::new();
        r.record_work(10.0);
        let kids: Vec<usize> = r.record_fork(2).collect();
        r.push(kids[0]);
        r.record_work(30.0);
        r.pop();
        r.push(kids[1]);
        r.record_work(50.0);
        r.pop();
        r.record_work(5.0);
        r.into_tree()
    }

    fn config(p: usize, overhead: OverheadModel) -> SimConfig {
        SimConfig::new(p, overhead)
    }

    #[test]
    fn single_processor_zero_overhead_equals_total_work() {
        let tree = sample_tree();
        let out = simulate(&tree, &config(1, OverheadModel::zero()));
        assert_eq!(out.makespan, tree.total_work());
        assert_eq!(out.total_overhead, 0.0);
        assert!((out.speedup_vs_sequential - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_processors_zero_overhead_overlap_children() {
        let tree = sample_tree();
        let out = simulate(&tree, &config(2, OverheadModel::zero()));
        // 10 + max(30, 50) + 5 = 65 (children overlap perfectly).
        assert_eq!(out.makespan, 65.0);
        assert_eq!(out.total_work, 95.0);
        assert!(out.speedup_vs_sequential > 1.4);
    }

    #[test]
    fn many_processors_zero_overhead_reach_critical_path() {
        let tree = sample_tree();
        let out = simulate(&tree, &config(16, OverheadModel::zero()));
        assert_eq!(out.makespan, tree.critical_path());
    }

    #[test]
    fn overheads_increase_makespan() {
        let tree = sample_tree();
        let cheap = simulate(&tree, &config(2, OverheadModel::zero()));
        let costly = simulate(&tree, &config(2, OverheadModel::rolog_like()));
        assert!(costly.makespan > cheap.makespan);
        assert!(costly.total_overhead > 0.0);
    }

    #[test]
    fn sequential_tree_is_unaffected_by_processor_count() {
        let mut r = TaskRecorder::new();
        r.record_work(100.0);
        let tree = r.into_tree();
        let p1 = simulate(&tree, &config(1, OverheadModel::rolog_like()));
        let p4 = simulate(&tree, &config(4, OverheadModel::rolog_like()));
        // Only the root dispatch overhead applies in both cases.
        assert_eq!(p1.makespan, p4.makespan);
        assert_eq!(p1.spawned_tasks, 0);
    }

    #[test]
    fn fine_grained_forks_with_high_overhead_are_slower_than_sequential() {
        // Many tiny tasks: parallel execution pays more in overhead than it
        // gains — exactly the phenomenon granularity control avoids.
        let mut r = TaskRecorder::new();
        for _ in 0..50 {
            let kids: Vec<usize> = r.record_fork(2).collect();
            r.push(kids[0]);
            r.record_work(1.0);
            r.pop();
            r.push(kids[1]);
            r.record_work(1.0);
            r.pop();
        }
        let tree = r.into_tree();
        let ideal = tree.total_work();
        let out = simulate(&tree, &SimConfig::rolog4());
        assert!(
            out.makespan > ideal,
            "fine-grained spawning should be slower than sequential ({} vs {ideal})",
            out.makespan
        );
    }

    #[test]
    fn coarse_grained_forks_with_high_overhead_still_speed_up() {
        let mut r = TaskRecorder::new();
        let kids = r.record_fork(4);
        for k in kids {
            r.push(k);
            r.record_work(10_000.0);
            r.pop();
        }
        let tree = r.into_tree();
        let out = simulate(&tree, &SimConfig::rolog4());
        let sequential = tree.total_work();
        assert!(
            out.makespan < sequential / 2.5,
            "expected near-4x speedup, got {}",
            sequential / out.makespan
        );
    }

    #[test]
    fn utilisation_and_busy_times_are_consistent() {
        let tree = sample_tree();
        let out = simulate(&tree, &config(2, OverheadModel::and_prolog_like()));
        assert_eq!(out.processor_busy.len(), 2);
        let busy: f64 = out.processor_busy.iter().sum();
        assert!((busy - (out.total_work + out.total_overhead)).abs() < 1e-6);
        assert!(out.utilisation > 0.0 && out.utilisation <= 1.0);
    }

    #[test]
    fn nested_forks_schedule_correctly() {
        // root forks two children; each child forks two grandchildren of 10.
        let mut r = TaskRecorder::new();
        let kids = r.record_fork(2);
        for k in kids {
            r.push(k);
            let grand = r.record_fork(2);
            for g in grand {
                r.push(g);
                r.record_work(10.0);
                r.pop();
            }
            r.pop();
        }
        let tree = r.into_tree();
        let out = simulate(&tree, &config(4, OverheadModel::zero()));
        // 4 leaves of 10 units on 4 processors: makespan 10.
        assert_eq!(out.makespan, 10.0);
        let seq = simulate(&tree, &config(1, OverheadModel::zero()));
        assert_eq!(seq.makespan, 40.0);
    }

    #[test]
    fn empty_tree_has_zero_makespan() {
        let tree = TaskTree::new();
        let out = simulate(&tree, &SimConfig::and_prolog4());
        // Only the root dispatch overhead (root has no work at all).
        assert!(out.makespan <= OverheadModel::and_prolog_like().dispatch);
        assert_eq!(out.total_work, 0.0);
    }

    #[test]
    fn more_processors_never_hurt_with_zero_overhead() {
        let tree = sample_tree();
        let mut last = f64::INFINITY;
        for p in [1, 2, 4, 8] {
            let out = simulate(&tree, &config(p, OverheadModel::zero()));
            assert!(out.makespan <= last + 1e-9, "P={p} regressed");
            last = out.makespan;
        }
    }
}

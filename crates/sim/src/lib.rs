//! # granlog-sim
//!
//! A multiprocessor **scheduling simulator** for the fork-join task trees
//! recorded by `granlog-engine`. Together they substitute for the hardware and
//! runtime systems used in the evaluation of *Task Granularity Analysis in
//! Logic Programs* (PLDI 1990): the paper measured ROLOG and &-Prolog on a
//! 4-processor Sequent Symmetry; here the engine supplies the work and
//! fork-join structure of each benchmark, and this crate replays it on a
//! configurable machine model (processor count plus task creation, startup,
//! dispatch and join overheads).
//!
//! The quantity the experiments compare — execution time with and without
//! granularity control, as a function of the task-management overhead — is
//! exactly what this model captures: spawning a task whose work is smaller
//! than the overhead makes the simulated makespan larger, and granularity
//! control removes those spawns.
//!
//! # Example
//!
//! ```
//! use granlog_engine::TaskRecorder;
//! use granlog_sim::{simulate, OverheadModel, SimConfig};
//!
//! // A root task forking two 1000-unit children.
//! let mut recorder = TaskRecorder::new();
//! let kids = recorder.record_fork(2);
//! for k in kids {
//!     recorder.push(k);
//!     recorder.record_work(1000.0);
//!     recorder.pop();
//! }
//! let tree = recorder.into_tree();
//!
//! let sequential = simulate(&tree, &SimConfig::new(1, OverheadModel::zero()));
//! let parallel = simulate(&tree, &SimConfig::new(4, OverheadModel::and_prolog_like()));
//! assert!(parallel.makespan < sequential.makespan);
//! ```

pub mod config;
pub mod sched;

pub use config::{OverheadModel, SimConfig};
pub use sched::{simulate, SimOutcome};

/// Simulates the same task tree under several configurations, returning the
/// outcomes in the same order. Convenient for building comparison tables.
pub fn compare(tree: &granlog_engine::TaskTree, configs: &[SimConfig]) -> Vec<SimOutcome> {
    configs.iter().map(|c| simulate(tree, c)).collect()
}

/// The conventional speedup figure used in the paper's tables:
/// `(t_without − t_with) / t_without`, as a percentage.
pub fn speedup_percent(t_without: f64, t_with: f64) -> f64 {
    if t_without == 0.0 {
        0.0
    } else {
        (t_without - t_with) / t_without * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granlog_engine::TaskRecorder;

    #[test]
    fn compare_runs_all_configs() {
        let mut r = TaskRecorder::new();
        r.record_work(100.0);
        let tree = r.into_tree();
        let outs = compare(
            &tree,
            &[
                SimConfig::new(1, OverheadModel::zero()),
                SimConfig::rolog4(),
            ],
        );
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].makespan, 100.0);
    }

    #[test]
    fn speedup_percent_matches_paper_convention() {
        // Table 1, fib(15): T0 = 1170, T1 = 850 ⇒ 27.3%.
        let s = speedup_percent(1170.0, 850.0);
        assert!((s - 27.35).abs() < 0.1);
        // Negative when granularity control hurts (flatten in Table 1).
        assert!(speedup_percent(1161.0, 1387.0) < 0.0);
        assert_eq!(speedup_percent(0.0, 10.0), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use granlog_engine::{TaskRecorder, TaskTree};
    use proptest::prelude::*;

    /// Builds a random fork-join tree from a recipe of (work, fanout) pairs.
    fn build_tree(recipe: &[(u16, u8)]) -> TaskTree {
        fn go(r: &mut TaskRecorder, recipe: &[(u16, u8)], depth: usize) {
            if recipe.is_empty() || depth > 3 {
                return;
            }
            let (work, fanout) = recipe[0];
            r.record_work(work as f64);
            if fanout > 0 {
                let kids = r.record_fork((fanout % 3 + 1) as usize);
                for k in kids {
                    r.push(k);
                    go(r, &recipe[1..], depth + 1);
                    r.pop();
                }
            }
        }
        let mut r = TaskRecorder::new();
        go(&mut r, recipe, 0);
        r.into_tree()
    }

    proptest! {
        /// The makespan always lies between the critical path and total work
        /// plus overhead, and 1-processor zero-overhead equals total work.
        #[test]
        fn makespan_bounds(recipe in prop::collection::vec((0u16..100, 0u8..3), 1..5),
                           procs in 1usize..6) {
            let tree = build_tree(&recipe);
            let zero = simulate(&tree, &SimConfig::new(procs, OverheadModel::zero()));
            prop_assert!(zero.makespan + 1e-6 >= tree.critical_path());
            prop_assert!(zero.makespan <= tree.total_work() + 1e-6);
            let seq = simulate(&tree, &SimConfig::new(1, OverheadModel::zero()));
            prop_assert!((seq.makespan - tree.total_work()).abs() < 1e-6);
        }

        /// Adding overhead never makes execution faster.
        #[test]
        fn overhead_is_monotone(recipe in prop::collection::vec((0u16..100, 0u8..3), 1..5),
                                scale in 0.0f64..10.0) {
            let tree = build_tree(&recipe);
            let base = simulate(&tree, &SimConfig::new(4, OverheadModel::zero()));
            let scaled = simulate(
                &tree,
                &SimConfig::new(4, OverheadModel::and_prolog_like().scaled(scale)),
            );
            prop_assert!(scaled.makespan + 1e-9 >= base.makespan);
        }
    }
}

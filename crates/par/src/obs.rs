//! Parallel-executor instrumentation handles.
//!
//! The executor does not own a registry; the embedding layer registers the
//! metrics once ([`ParObs::register`]) and installs the bundle with
//! [`crate::ParExecutor::set_obs`]. With no bundle installed the spawn,
//! steal and join paths skip all measurement — the executor's own
//! `spawned`/`inlined` counters (reported in [`crate::ParOutcome`]) are
//! untouched either way, so instrumented runs stay counter-identical.
//!
//! These are exactly the measurements the ROADMAP's "adaptive granularity
//! control" item needs: calibrating the spawn-overhead constant W online
//! means comparing observed arm solve time ([`ParObs::arm_ms`]) against
//! observed fork/join overhead ([`ParObs::join_wait_ms`]).

use granlog_obs::{Counter, Histogram, Registry, Tracer, LATENCY_BUCKETS_MS};
use std::sync::Arc;

/// Metric and trace handles for the and-parallel executor.
#[derive(Debug, Clone)]
pub struct ParObs {
    /// Arms pushed across the spawn boundary.
    pub spawned: Arc<Counter>,
    /// Conjunctions run inline (guard said too small, or arms not
    /// independent).
    pub inlined: Arc<Counter>,
    /// Jobs taken from the injector by a thread other than their forker
    /// (pool workers and help-first joiners).
    pub steals: Arc<Counter>,
    /// Wall time one spawned arm's goal took to solve on its worker.
    pub arm_ms: Arc<Histogram>,
    /// Wall time a joiner spent in `join_job` per arm (helping included).
    pub join_wait_ms: Arc<Histogram>,
    /// Event sink for `par_spawn` / `par_inline` / `par_steal` / `par_join`
    /// events.
    pub tracer: Arc<Tracer>,
}

impl ParObs {
    /// Register the executor's metrics under their canonical names and
    /// bundle them with `tracer`. Idempotent per registry.
    pub fn register(registry: &Registry, tracer: Arc<Tracer>) -> ParObs {
        ParObs {
            spawned: registry.counter("granlog_par_spawned_total"),
            inlined: registry.counter("granlog_par_inlined_total"),
            steals: registry.counter("granlog_par_steals_total"),
            arm_ms: registry.histogram("granlog_par_arm_ms", LATENCY_BUCKETS_MS),
            join_wait_ms: registry.histogram("granlog_par_join_wait_ms", LATENCY_BUCKETS_MS),
            tracer,
        }
    }
}

//! # granlog-par
//!
//! A **multi-threaded and-parallel executor** for the granlog engine: the
//! piece that closes the paper's loop. *Task Granularity Analysis in Logic
//! Programs* (Debray, Lin & Hermenegildo, PLDI 1990) derives cost bounds so
//! that a parallel conjunction is only spawned when the work under it
//! exceeds the task-management overhead — a decision that only matters on a
//! real multiprocessor. `granlog-sim` replays recorded fork-join trees on a
//! *simulated* machine; this crate executes the annotated programs on a pool
//! of actual worker threads and lets the analysis drive the spawn decision
//! at run time.
//!
//! # Architecture
//!
//! * **One machine per worker.** Each worker thread owns its own
//!   [`Machine`] (bump arena, goal stack, choice points); the compiled
//!   clause templates are shared across machines through an
//!   `Arc<[ClauseTemplate]>` ([`Machine::with_templates`]), and idle
//!   machines are parked in a free-list so nested spawns reuse warm arenas.
//! * **A shared injector deque.** Spawned arms are pushed to a global
//!   `Mutex<VecDeque>` and popped by idle workers — the simple end of the
//!   work-stealing design space, chosen because granularity control makes
//!   spawns *coarse*: the queue is touched once per spawned task, not once
//!   per resolution.
//! * **Copy in, copy out.** Arms cross the spawn boundary by value (see
//!   [`granlog_engine::par`]): the parent machine resolves each arm out of
//!   its arena into a self-contained [`Term`], the child runs it as a fresh
//!   query against its own arena, and the answer bindings are copied back
//!   and unified at the join. No heap cell is ever shared between threads.
//! * **Deterministic join, help-first waiting.** The spawning thread
//!   executes arm 0 itself, then joins the remaining arms *in order*; while
//!   a joined arm is still running elsewhere the joiner drains other
//!   pending jobs from the injector instead of blocking, so the wait-for
//!   graph stays acyclic and no configuration of nested conjunctions can
//!   deadlock.
//! * **Runtime granularity control.** With [`Granularity::On`], the
//!   analysis' cost functions and thresholds are lowered into per-predicate
//!   spawn guards ([`SpawnGuards`]): at each `&`, the driving argument of
//!   each arm is measured on the actual goal and the conjunction is spawned
//!   only if every arm's estimated work reaches the spawn overhead —
//!   otherwise it runs inline, sequentially, on the spawning machine.
//!   [`Granularity::AlwaysSpawn`] spawns every conjunction (the paper's
//!   "no control" baseline) and [`Granularity::Off`] runs every conjunction
//!   inline (the sequential baseline, on the same code path).
//! * **Fault isolation.** Every job runs under `catch_unwind`: a panic in a
//!   spawned arm completes its job as [`EngineError::WorkerPanic`] instead
//!   of leaving it claimed forever (which would spin its joiner for the
//!   rest of the process), and the panicking arm's machine is discarded
//!   rather than returned to the free-list. Executor locks recover from
//!   poisoning. Builds with the `failpoints` feature add injectable faults
//!   at the `par.spawn` (arm execution) and `par.join` (result collection)
//!   seams — see the `granlog-fault` crate.
//!
//! Arms that share an unbound variable are not independent; the executor
//! detects this during copy-out and runs such conjunctions inline, so the
//! parallel execution always computes the same first answer as the
//! sequential engine.
//!
//! # Example
//!
//! ```
//! use granlog_ir::parser::parse_program;
//! use granlog_par::{Granularity, ParConfig, ParExecutor};
//!
//! let program = parse_program(r#"
//!     fib(0, 0).
//!     fib(1, 1).
//!     fib(M, N) :- M > 1, M1 is M - 1, M2 is M - 2,
//!                  fib(M1, N1) & fib(M2, N2), N is N1 + N2.
//! "#).unwrap();
//! let mut exec = ParExecutor::new(&program, ParConfig {
//!     threads: 2,
//!     granularity: Granularity::AlwaysSpawn,
//!     ..ParConfig::default()
//! });
//! let out = exec.run_query("fib(12, X)").unwrap();
//! assert!(out.succeeded);
//! assert_eq!(out.binding("X").unwrap().to_string(), "144");
//! assert!(out.spawned_tasks > 0);
//! ```

#![warn(missing_docs)]

use granlog_analysis::guard::{PredGuard, SpawnGuards};
use granlog_analysis::pipeline::{analyze_program, AnalysisOptions};
use granlog_analysis::Measure;
use granlog_engine::par::{ArmAnswer, CellGuard, CellGuards, GuardMeasure, ParDecision, ParHook};
use granlog_engine::{
    Budget, ClauseTemplate, Counters, EngineError, EngineResult, Machine, MachineConfig, Solve,
};
use granlog_ir::{parser, Program, Symbol, Term};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

pub mod obs;
pub use obs::ParObs;

/// Locks a mutex, recovering the data from a poisoned lock: a panic in one
/// worker must never wedge the whole executor, and every structure guarded
/// here (injector, machine pool, job states) stays consistent across a
/// mid-critical-section unwind because mutations are single assignments or
/// push/pop operations.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// How the executor decides whether a `&` conjunction is spawned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Granularity control on: spawn a conjunction only when every arm's
    /// estimated work (the analysis cost function evaluated on the measured
    /// size of the arm's driving argument) reaches the spawn overhead;
    /// otherwise run it inline, sequentially.
    On,
    /// Parallelism disabled: every conjunction runs inline on the spawning
    /// machine (the sequential baseline, on the same code path).
    Off,
    /// Spawn every conjunction unconditionally (the "no control" baseline
    /// whose task-management overhead the paper measures).
    AlwaysSpawn,
}

/// Configuration of a [`ParExecutor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParConfig {
    /// Total number of threads executing the query: the caller plus
    /// `threads - 1` pool workers. `1` runs every spawned arm on the calling
    /// thread (exercising the full copy-out/copy-in boundary without
    /// concurrency).
    pub threads: usize,
    /// The spawn-decision mode.
    pub granularity: Granularity,
    /// Task-management overhead `W` used to compile the spawn guards, in the
    /// analysis' cost units (resolutions by default). Only read with
    /// [`Granularity::On`].
    pub overhead: f64,
    /// Configuration of every worker machine.
    pub machine: MachineConfig,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            threads: 4,
            granularity: Granularity::On,
            overhead: granlog_analysis::annotate::AnnotateOptions::default().overhead,
            machine: MachineConfig::default(),
        }
    }
}

/// The outcome of a parallel query.
#[derive(Debug, Clone)]
pub struct ParOutcome {
    /// Did the query succeed?
    pub succeeded: bool,
    /// Bindings of the query's named variables, in source order.
    pub bindings: Vec<(Symbol, Term)>,
    /// Operation counters, aggregated across every machine that worked on
    /// the query (join unifications included).
    pub counters: Counters,
    /// Total work in cost-model units, aggregated like the counters.
    pub work: f64,
    /// Number of arms handed to the thread pool.
    pub spawned_tasks: usize,
    /// Number of `&` conjunctions the granularity guards (or an
    /// independence fallback) ran inline instead of spawning.
    pub inlined_conjunctions: usize,
}

impl ParOutcome {
    /// The binding of a variable by name, if any.
    pub fn binding(&self, name: &str) -> Option<&Term> {
        self.bindings
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, t)| t)
    }
}

/// The raw result of one spawned arm, produced on whichever thread ran it.
/// `var_terms[i]` is the answer for the arm's dense variable `i`, over the
/// answer-local fresh alphabet `0..fresh` (shared across the arm's answers).
struct RawAnswer {
    var_terms: Vec<Term>,
    fresh: usize,
    counters: Counters,
    work: f64,
}

type JobResult = Result<Option<RawAnswer>, EngineError>;

enum JobState {
    /// In the injector (or about to be): any thread may claim it.
    Pending,
    /// Claimed by some thread and currently executing.
    Claimed,
    /// Finished; the result is waiting for its joiner.
    Done(JobResult),
    /// The joiner took the result.
    Consumed,
}

/// One spawned arm: a self-contained goal (dense variables `0..nvars`) plus
/// its completion state.
struct Job {
    goal: Term,
    nvars: usize,
    state: Mutex<JobState>,
    cv: Condvar,
}

/// State shared between the spawning thread and the pool workers for the
/// lifetime of the executor. Also the [`ParHook`] implementation the
/// machines call at every `&`.
struct Shared<'p> {
    program: &'p Program,
    templates: Arc<[ClauseTemplate]>,
    machine_config: MachineConfig,
    granularity: Granularity,
    /// Cell-level spawn guards (granularity-on only): evaluated by the
    /// machine over heap cells before any copy-out.
    cell_guards: Option<CellGuards>,
    injector: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
    done: AtomicBool,
    machines: Mutex<Vec<Machine<'p>>>,
    spawned: AtomicUsize,
    inlined: AtomicUsize,
    /// Instrumentation bundle; `None` leaves every path unmeasured. The
    /// outcome's own spawn/inline counts never route through this.
    obs: Option<Arc<ParObs>>,
}

impl<'p> Shared<'p> {
    fn acquire_machine(&self) -> Machine<'p> {
        let pooled = lock_recovering(&self.machines).pop();
        pooled.unwrap_or_else(|| {
            Machine::with_templates(
                self.program,
                self.machine_config,
                Arc::clone(&self.templates),
            )
        })
    }

    fn release_machine(&self, machine: Machine<'p>) {
        lock_recovering(&self.machines).push(machine);
    }

    /// Claims and executes a job if it is still pending; a no-op otherwise.
    ///
    /// The execution is wrapped in `catch_unwind`: a panic inside a spawned
    /// arm must complete the job (as [`EngineError::WorkerPanic`]) rather
    /// than leave it `Claimed` forever — a joiner waiting on a job that will
    /// never transition to `Done` would spin for the rest of the process.
    /// The panicking arm's machine is dropped mid-unwind, so it never
    /// returns to the free-list.
    fn run_job(&self, job: &Job) -> bool {
        {
            let mut state = lock_recovering(&job.state);
            match *state {
                JobState::Pending => *state = JobState::Claimed,
                _ => return false,
            }
        }
        let result = panic::catch_unwind(AssertUnwindSafe(|| self.exec_job(job))).unwrap_or_else(
            |payload| {
                Err(EngineError::WorkerPanic(
                    panic_message(&*payload).to_string(),
                ))
            },
        );
        let mut state = lock_recovering(&job.state);
        *state = JobState::Done(result);
        job.cv.notify_all();
        true
    }

    /// Runs a job's goal to its first solution on a pooled machine and
    /// extracts the dense-variable answers (see [`RawAnswer`]).
    fn exec_job(&self, job: &Job) -> JobResult {
        let mut machine = self.acquire_machine();
        // Injected failures discard the acquired machine (the early return
        // drops it), mirroring the hygiene of a real panic.
        granlog_fault::fail_or("par.spawn", || EngineError::Fault("par.spawn"))?;
        let started = self.obs.as_ref().map(|_| Instant::now());
        let outcome = machine.run_goal_par(&job.goal, &[], Some(self));
        if let (Some(obs), Some(started)) = (&self.obs, started) {
            let elapsed = started.elapsed();
            obs.arm_ms.observe_duration_ms(elapsed);
            obs.tracer.emit(
                "par_arm",
                vec![("ms", (elapsed.as_secs_f64() * 1e3).into())],
            );
        }
        let result = match outcome {
            Err(e) => Err(e),
            Ok(out) if !out.succeeded => Ok(None),
            Ok(out) => {
                // Child-side copy-out: renumber the unbound cells of the
                // answers into a dense answer-local alphabet, preserving
                // sharing across the arm's variables.
                let mut fresh: BTreeMap<usize, usize> = BTreeMap::new();
                let var_terms: Vec<Term> = (0..job.nvars)
                    .map(|i| renumber_answer(&machine.resolve_var(i), &mut fresh))
                    .collect();
                Ok(Some(RawAnswer {
                    var_terms,
                    fresh: fresh.len(),
                    counters: out.counters,
                    work: out.work,
                }))
            }
        };
        self.release_machine(machine);
        result
    }

    /// Pops and runs one pending job from the injector. Returns `false` if
    /// the injector was empty.
    fn try_help(&self) -> bool {
        let job = lock_recovering(&self.injector).pop_front();
        match job {
            Some(job) => {
                if self.run_job(&job) {
                    self.note_steal();
                }
                true
            }
            None => false,
        }
    }

    /// Records a job executed by a thread other than its forker (a pool
    /// worker, or a joiner helping while it waits).
    fn note_steal(&self) {
        if let Some(obs) = &self.obs {
            obs.steals.inc();
            obs.tracer.emit("par_steal", vec![]);
        }
    }

    /// Waits for a job's completion, running it inline if still pending and
    /// draining other pending jobs while it runs elsewhere (help-first
    /// joining: the wait-for graph stays acyclic, so nested conjunctions
    /// cannot deadlock).
    fn join_job(&self, job: &Job) -> JobResult {
        granlog_fault::fail_or("par.join", || EngineError::Fault("par.join"))?;
        let started = self.obs.as_ref().map(|_| Instant::now());
        self.run_job(job);
        let result = loop {
            {
                let mut state = lock_recovering(&job.state);
                if matches!(*state, JobState::Done(_)) {
                    let JobState::Done(result) = std::mem::replace(&mut *state, JobState::Consumed)
                    else {
                        unreachable!("matched Done above");
                    };
                    break result;
                }
            }
            if !self.try_help() {
                let state = lock_recovering(&job.state);
                if !matches!(*state, JobState::Done(_)) {
                    // Short-timeout wait: the runner's notify wakes us
                    // early; the timeout bounds how long a newly injected
                    // job can sit unseen while we sleep. A poisoned wait is
                    // ignored — the loop re-reads the state either way.
                    let _ = job.cv.wait_timeout(state, Duration::from_millis(1));
                }
            }
        };
        if let (Some(obs), Some(started)) = (&self.obs, started) {
            let elapsed = started.elapsed();
            obs.join_wait_ms.observe_duration_ms(elapsed);
            obs.tracer.emit(
                "par_join",
                vec![("ms", (elapsed.as_secs_f64() * 1e3).into())],
            );
        }
        result
    }

    /// The pool worker's main loop: pop and run jobs until shutdown.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = lock_recovering(&self.injector);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if self.done.load(Ordering::Acquire) {
                        break None;
                    }
                    queue = self
                        .work_cv
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            match job {
                Some(job) => {
                    if self.run_job(&job) {
                        self.note_steal();
                    }
                }
                None => return,
            }
        }
    }

    fn finish(&self) {
        self.done.store(true, Ordering::Release);
        self.work_cv.notify_all();
    }
}

impl ParHook for Shared<'_> {
    fn cell_guards(&self) -> Option<&CellGuards> {
        self.cell_guards.as_ref()
    }

    fn note_inlined(&self) {
        self.inlined.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.inlined.inc();
            obs.tracer.emit("par_inline", vec![]);
        }
    }

    fn exec_arms(&self, arms: &[Term]) -> EngineResult<ParDecision> {
        // Granularity-on conjunctions that reach this point already passed
        // the machine's cell-guard pre-screen ([`ParHook::cell_guards`]);
        // `Off` installs no hook at all, so only spawn-worthy conjunctions
        // arrive here.
        if arms.len() < 2 {
            return Ok(ParDecision::Inline);
        }
        // Copy-out: renumber each arm's unbound parent cells into a dense
        // per-arm alphabet, remembering which parent cell each dense
        // variable stands for.
        let mut jobs: Vec<(Arc<Job>, Vec<usize>)> = Vec::with_capacity(arms.len());
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for arm in arms {
            let mut map = BTreeMap::new();
            let mut parents = Vec::new();
            let goal = renumber_goal(arm, &mut map, &mut parents);
            // Independence check: an unbound variable shared between arms
            // would make the arms' first solutions order-dependent — run
            // such conjunctions inline so parallel execution is always
            // answer-equivalent to sequential execution.
            if parents.iter().any(|p| !seen.insert(*p)) {
                self.inlined.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.obs {
                    obs.inlined.inc();
                    obs.tracer.emit("par_inline", vec![]);
                }
                return Ok(ParDecision::Inline);
            }
            let nvars = parents.len();
            jobs.push((
                Arc::new(Job {
                    goal,
                    nvars,
                    state: Mutex::new(JobState::Pending),
                    cv: Condvar::new(),
                }),
                parents,
            ));
        }
        self.spawned.fetch_add(jobs.len(), Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.spawned.add(jobs.len() as u64);
            obs.tracer
                .emit("par_spawn", vec![("arms", jobs.len().into())]);
        }
        {
            let mut queue = lock_recovering(&self.injector);
            for (job, _) in jobs.iter().skip(1) {
                queue.push_back(Arc::clone(job));
            }
        }
        self.work_cv.notify_all();
        // Run arm 0 on this thread, then join the rest in order.
        self.run_job(&jobs[0].0);
        let mut answers = Vec::with_capacity(jobs.len());
        let mut failed = false;
        let mut error: Option<EngineError> = None;
        for (job, parents) in &jobs {
            match self.join_job(job) {
                Ok(Some(raw)) => answers.push(ArmAnswer {
                    bindings: parents
                        .iter()
                        .zip(raw.var_terms)
                        .map(|(&parent, term)| (parent, term))
                        .collect(),
                    fresh_vars: raw.fresh,
                    counters: raw.counters,
                    work: raw.work,
                }),
                Ok(None) => failed = true,
                Err(e) => error = error.or(Some(e)),
            }
        }
        if let Some(e) = error {
            return Err(e);
        }
        if failed {
            return Ok(ParDecision::Executed(None));
        }
        Ok(ParDecision::Executed(Some(answers)))
    }
}

/// The multi-threaded and-parallel executor: a program's compiled templates,
/// a machine free-list, the spawn guards and the injector queue. Reusable
/// across queries (machines stay warm); one query runs at a time.
pub struct ParExecutor<'p> {
    shared: Shared<'p>,
    threads: usize,
    /// Does any clause body mention `&` at all? Purely sequential programs
    /// skip worker startup entirely (a dynamically constructed `&` still
    /// executes correctly — the spawning thread runs every job itself).
    has_par: bool,
}

impl<'p> ParExecutor<'p> {
    /// Creates an executor for a program. With [`Granularity::On`] the
    /// program is analysed here and the thresholds are lowered into runtime
    /// spawn guards; the other modes skip the analysis.
    pub fn new(program: &'p Program, config: ParConfig) -> Self {
        let cell_guards = matches!(config.granularity, Granularity::On).then(|| {
            let analysis = analyze_program(program, &AnalysisOptions::default());
            lower_guards(&SpawnGuards::compile(&analysis, config.overhead))
        });
        let templates: Arc<[ClauseTemplate]> =
            granlog_engine::template::compile_program(program).into();
        let has_par = program
            .clauses()
            .iter()
            .any(|clause| mentions_par(&clause.body));
        ParExecutor {
            shared: Shared {
                program,
                templates,
                machine_config: config.machine,
                granularity: config.granularity,
                cell_guards,
                injector: Mutex::new(VecDeque::new()),
                work_cv: Condvar::new(),
                done: AtomicBool::new(false),
                machines: Mutex::new(Vec::new()),
                spawned: AtomicUsize::new(0),
                inlined: AtomicUsize::new(0),
                obs: None,
            },
            threads: config.threads.max(1),
            has_par,
        }
    }

    /// Installs (or clears) spawn/steal/join instrumentation (see
    /// [`obs::ParObs`]). With no bundle installed the executor measures
    /// nothing; either way its answers and counters are identical.
    pub fn set_obs(&mut self, obs: Option<Arc<ParObs>>) {
        self.shared.obs = obs;
    }

    /// Parses and runs a query (e.g. `"fib(15, X)"`) on the thread pool.
    ///
    /// # Errors
    ///
    /// Returns an error if the query does not parse or execution hits a
    /// limit or runtime error on any machine.
    pub fn run_query(&mut self, query: &str) -> EngineResult<ParOutcome> {
        let (goal, var_names) = parser::parse_term(query).map_err(|e| EngineError::TypeError {
            builtin: "query",
            message: e.to_string(),
        })?;
        self.run_goal(&goal, &var_names)
    }

    /// Runs an already-parsed goal whose variables are numbered
    /// `0..var_names.len()`.
    ///
    /// The calling thread executes the query's root (and arm 0 of every
    /// conjunction it spawns); `threads - 1` scoped workers run spawned
    /// arms. Workers live for the duration of the call.
    ///
    /// # Errors
    ///
    /// Returns an error if execution hits a limit or runtime error on any
    /// machine.
    pub fn run_goal(&mut self, goal: &Term, var_names: &[Symbol]) -> EngineResult<ParOutcome> {
        let (outcome, _slices) = self.run_goal_budgeted(goal, var_names, &Budget::UNLIMITED)?;
        Ok(outcome)
    }

    /// [`ParExecutor::run_goal`] under a per-slice [`Budget`]: the calling
    /// thread's top-level machine runs in budget slices, resuming after each
    /// [`Solve::Yield`] while the scoped workers stay alive across slices.
    /// Spawned arms run to completion on their workers (an arm is joined
    /// synchronously at its fork, so a yield can never strand one); the
    /// budget throttles and bounds the *root* computation. Returns the
    /// outcome plus the number of slices the solve took (1 = never
    /// preempted).
    ///
    /// Since parallel execution is deterministic here (in-order join, one
    /// query at a time), a budgeted run produces bit-identical answers and
    /// counters to an unbudgeted run of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if execution hits a limit, a runtime error on any
    /// machine, or exhausts a non-preemptible budget.
    pub fn run_goal_budgeted(
        &mut self,
        goal: &Term,
        var_names: &[Symbol],
        budget: &Budget,
    ) -> EngineResult<(ParOutcome, usize)> {
        self.shared.done.store(false, Ordering::Release);
        self.shared.spawned.store(0, Ordering::Relaxed);
        self.shared.inlined.store(0, Ordering::Relaxed);
        let shared = &self.shared;
        // Workers are useful only when something can reach the injector: a
        // program with `&` in it, run in a mode that installs the hook.
        let spawns_possible = self.has_par && shared.granularity != Granularity::Off;
        let workers = if spawns_possible { self.threads - 1 } else { 0 };
        let (outcome, slices) = std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| shared.worker_loop());
            }
            let hook = (shared.granularity != Granularity::Off).then_some(shared as &dyn ParHook);
            let mut machine = shared.acquire_machine();
            let mut slices = 1usize;
            let mut state = machine.solve_goal(goal, var_names, hook, budget);
            let outcome = loop {
                match state {
                    Ok(Solve::Done(outcome)) => break Ok(outcome),
                    Ok(Solve::Yield(token)) => {
                        slices += 1;
                        state = machine.resume(token, hook, budget);
                    }
                    Err(e) => break Err(e),
                }
            };
            shared.release_machine(machine);
            shared.finish();
            outcome.map(|outcome| (outcome, slices))
        })?;
        Ok((
            ParOutcome {
                succeeded: outcome.succeeded,
                bindings: outcome.bindings,
                counters: outcome.counters,
                work: outcome.work,
                spawned_tasks: self.shared.spawned.load(Ordering::Relaxed),
                inlined_conjunctions: self.shared.inlined.load(Ordering::Relaxed),
            },
            slices,
        ))
    }
}

/// Does a clause-body term mention the parallel-conjunction functor
/// anywhere (including under control constructs)?
fn mentions_par(term: &Term) -> bool {
    match term {
        Term::Struct(s, args) => {
            (*s == granlog_ir::symbol::well_known::par_and() && args.len() == 2)
                || args.iter().any(mentions_par)
        }
        _ => false,
    }
}

/// Lowers the analysis' per-predicate spawn guards into the engine's
/// cell-level table, so the machine can evaluate them over heap cells with
/// bounded traversals before paying any copy-out.
fn lower_guards(guards: &SpawnGuards) -> CellGuards {
    let mut table = CellGuards::new();
    for (pred, guard) in guards.iter() {
        let lowered = match guard {
            PredGuard::Always => CellGuard::Always,
            PredGuard::Never => CellGuard::Never,
            PredGuard::SizeAtLeast {
                arg_pos,
                measure,
                k,
            } => match measure {
                Measure::ListLength => CellGuard::SizeAtLeast {
                    arg_pos: arg_pos as u32,
                    measure: GuardMeasure::ListLength,
                    k,
                },
                Measure::IntValue => CellGuard::SizeAtLeast {
                    arg_pos: arg_pos as u32,
                    measure: GuardMeasure::IntValue,
                    k,
                },
                Measure::TermDepth => CellGuard::SizeAtLeast {
                    arg_pos: arg_pos as u32,
                    measure: GuardMeasure::TermDepth,
                    k,
                },
                Measure::TermSize => CellGuard::SizeAtLeast {
                    arg_pos: arg_pos as u32,
                    measure: GuardMeasure::TermSize,
                    k,
                },
                // No size information: err on the parallel side.
                Measure::Ignore => CellGuard::Always,
            },
        };
        table.insert(pred.name, pred.arity, lowered);
    }
    table
}

/// Copy-out renumbering: rewrites `Term::Var(parent cell)` into dense
/// `Term::Var(0..n)`, recording which parent cell each dense variable stands
/// for.
fn renumber_goal(term: &Term, map: &mut BTreeMap<usize, usize>, parents: &mut Vec<usize>) -> Term {
    match term {
        Term::Var(parent) => {
            let id = *map.entry(*parent).or_insert_with(|| {
                parents.push(*parent);
                parents.len() - 1
            });
            Term::Var(id)
        }
        Term::Struct(name, args) => Term::Struct(
            *name,
            args.iter()
                .map(|a| renumber_goal(a, map, parents))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Child-side answer renumbering: rewrites the child machine's unbound cell
/// indices into a dense answer-local alphabet (shared across one arm's
/// answers, preserving sharing).
fn renumber_answer(term: &Term, map: &mut BTreeMap<usize, usize>) -> Term {
    match term {
        Term::Var(cell) => {
            let next = map.len();
            Term::Var(*map.entry(*cell).or_insert(next))
        }
        Term::Struct(name, args) => Term::Struct(
            *name,
            args.iter().map(|a| renumber_answer(a, map)).collect(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granlog_engine::Machine;
    use granlog_ir::parser::parse_program;

    /// The failpoint registry is process-global, so tests that arm
    /// failpoints take this lock exclusively while every other test holds
    /// it shared — ordinary runs must never observe another test's armed
    /// faults.
    #[cfg(feature = "failpoints")]
    static FAULT_LOCK: std::sync::RwLock<()> = std::sync::RwLock::new(());

    #[cfg(feature = "failpoints")]
    fn fault_exclusive() -> std::sync::RwLockWriteGuard<'static, ()> {
        FAULT_LOCK.write().unwrap_or_else(PoisonError::into_inner)
    }

    #[cfg(feature = "failpoints")]
    fn fault_shared() -> std::sync::RwLockReadGuard<'static, ()> {
        FAULT_LOCK.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn run(src: &str, query: &str, threads: usize, granularity: Granularity) -> ParOutcome {
        #[cfg(feature = "failpoints")]
        let _shared = fault_shared();
        let program = parse_program(src).unwrap();
        let mut exec = ParExecutor::new(
            &program,
            ParConfig {
                threads,
                granularity,
                ..ParConfig::default()
            },
        );
        exec.run_query(query).unwrap()
    }

    const FIB: &str = r#"
        fib(0, 0).
        fib(1, 1).
        fib(M, N) :- M > 1, M1 is M - 1, M2 is M - 2,
                     fib(M1, N1) & fib(M2, N2), N is N1 + N2.
    "#;

    #[test]
    fn parallel_fib_matches_sequential_answer() {
        for threads in [1, 2, 4] {
            let out = run(FIB, "fib(14, X)", threads, Granularity::AlwaysSpawn);
            assert!(out.succeeded);
            assert_eq!(out.binding("X").unwrap().to_string(), "377", "{threads}");
            assert!(out.spawned_tasks > 0);
        }
    }

    #[test]
    fn obs_observes_spawns_and_joins_without_perturbing_counters() {
        #[cfg(feature = "failpoints")]
        let _shared = fault_shared();
        let program = parse_program(FIB).unwrap();
        let plain = run(FIB, "fib(12, X)", 2, Granularity::AlwaysSpawn);

        let registry = granlog_obs::Registry::new();
        let tracer = Arc::new(granlog_obs::Tracer::new(4096));
        let mut exec = ParExecutor::new(
            &program,
            ParConfig {
                threads: 2,
                granularity: Granularity::AlwaysSpawn,
                ..ParConfig::default()
            },
        );
        exec.set_obs(Some(Arc::new(ParObs::register(
            &registry,
            Arc::clone(&tracer),
        ))));
        let out = exec.run_query("fib(12, X)").unwrap();
        assert!(out.succeeded);
        assert_eq!(out.binding("X").unwrap().to_string(), "144");
        // The instrumented registry mirrors the outcome's own counter...
        assert_eq!(
            registry.counter_value("granlog_par_spawned_total"),
            Some(out.spawned_tasks as u64)
        );
        // ...and the instrumented run is counter-identical to the plain one.
        assert_eq!(out.counters, plain.counters);
        assert_eq!(out.spawned_tasks, plain.spawned_tasks);
        let joins = registry
            .histogram_snapshot("granlog_par_join_wait_ms")
            .expect("registered");
        assert_eq!(joins.count, out.spawned_tasks as u64);
        let kinds: Vec<&str> = tracer.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"par_spawn"));
        assert!(kinds.contains(&"par_join"));
    }

    #[test]
    fn granularity_off_runs_inline() {
        let out = run(FIB, "fib(10, X)", 4, Granularity::Off);
        assert!(out.succeeded);
        assert_eq!(out.binding("X").unwrap().to_string(), "55");
        assert_eq!(out.spawned_tasks, 0);
    }

    #[test]
    fn granularity_on_inlines_small_conjunctions() {
        // With modes declared, fib's cost is exponential in the int
        // argument: small calls inline, the top calls spawn.
        let src = ":- mode fib(+, -).\n".to_owned() + FIB;
        let out = run(&src, "fib(14, X)", 2, Granularity::On);
        assert!(out.succeeded);
        assert_eq!(out.binding("X").unwrap().to_string(), "377");
        assert!(out.inlined_conjunctions > 0, "small calls must inline");
        assert!(out.spawned_tasks > 0, "big calls must spawn");
        // Always-spawn pays the boundary on every level.
        let all = run(&src, "fib(14, X)", 2, Granularity::AlwaysSpawn);
        assert!(all.spawned_tasks > out.spawned_tasks);
    }

    #[test]
    fn failing_arm_fails_the_conjunction() {
        let src = r#"
            ok(_).
            both(X) :- ok(X) & fail.
            one(X) :- ok(X) & ok(X).
        "#;
        assert!(!run(src, "both(1)", 2, Granularity::AlwaysSpawn).succeeded);
        assert!(run(src, "one(1)", 2, Granularity::AlwaysSpawn).succeeded);
    }

    #[test]
    fn dependent_arms_fall_back_to_inline_execution() {
        // X is shared unbound between the arms: the independence check must
        // force inline execution, making the outcome identical to the
        // sequential engine's committed-arms semantics (here: p commits to
        // X = 1, q(1) fails, so the conjunction fails — in both engines).
        let src = r#"
            p(1). p(2).
            q(2).
            s(X) :- p(X) & q(X).
            t(X, Y) :- p(X) & p(Y).
        "#;
        let out = run(src, "s(X)", 2, Granularity::AlwaysSpawn);
        let program = parse_program(src).unwrap();
        let mut seq = Machine::new(&program);
        let seq_out = seq.run_query("s(X)").unwrap();
        assert_eq!(out.succeeded, seq_out.succeeded);
        assert!(!out.succeeded);
        assert_eq!(out.spawned_tasks, 0, "dependent arms must not spawn");
        assert!(out.inlined_conjunctions > 0);
        // Independent arms of the same shape do spawn.
        let out = run(src, "t(X, Y)", 2, Granularity::AlwaysSpawn);
        assert!(out.succeeded);
        assert_eq!(out.binding("X").unwrap().to_string(), "1");
        assert_eq!(out.binding("Y").unwrap().to_string(), "1");
        assert_eq!(out.spawned_tasks, 2);
    }

    #[test]
    fn answers_with_shared_fresh_variables_copy_back() {
        // The spawned arm's answer leaves structure with unbound variables
        // shared across two parent variables; the join must preserve the
        // sharing.
        let src = r#"
            mk(f(Z), g(Z)).
            go(A, B) :- mk(A, B) & mk(_, _).
        "#;
        let out = run(src, "go(A, B)", 2, Granularity::AlwaysSpawn);
        assert!(out.succeeded);
        let a = out.binding("A").unwrap().to_string();
        let b = out.binding("B").unwrap().to_string();
        // Both answers mention the *same* variable.
        let va = a.trim_start_matches("f(").trim_end_matches(')');
        let vb = b.trim_start_matches("g(").trim_end_matches(')');
        assert_eq!(va, vb, "sharing lost: {a} vs {b}");
    }

    #[test]
    fn errors_in_spawned_arms_propagate() {
        #[cfg(feature = "failpoints")]
        let _shared = fault_shared();
        let src = r#"
            ok(_).
            bad(X) :- ok(X) & undefined_pred(X).
        "#;
        let program = parse_program(src).unwrap();
        let mut exec = ParExecutor::new(
            &program,
            ParConfig {
                threads: 2,
                granularity: Granularity::AlwaysSpawn,
                ..ParConfig::default()
            },
        );
        let err = exec.run_query("bad(1)").unwrap_err();
        assert!(matches!(err, EngineError::UnknownPredicate(_)), "{err}");
    }

    #[test]
    fn executor_is_reusable_across_queries() {
        #[cfg(feature = "failpoints")]
        let _shared = fault_shared();
        let program = parse_program(FIB).unwrap();
        let mut exec = ParExecutor::new(
            &program,
            ParConfig {
                threads: 2,
                granularity: Granularity::AlwaysSpawn,
                ..ParConfig::default()
            },
        );
        let a = exec.run_query("fib(10, X)").unwrap();
        let b = exec.run_query("fib(8, X)").unwrap();
        assert!(a.succeeded && b.succeeded);
        assert_eq!(b.binding("X").unwrap().to_string(), "21");
    }

    #[test]
    fn budgeted_parallel_run_matches_unbudgeted() {
        #[cfg(feature = "failpoints")]
        let _shared = fault_shared();
        let program = parse_program(FIB).unwrap();
        let mut exec = ParExecutor::new(
            &program,
            ParConfig {
                threads: 2,
                granularity: Granularity::AlwaysSpawn,
                ..ParConfig::default()
            },
        );
        let full = exec.run_query("fib(12, X)").unwrap();
        let (goal, vars) = granlog_ir::parser::parse_term("fib(12, X)").unwrap();
        let (sliced, slices) = exec
            .run_goal_budgeted(&goal, &vars, &Budget::steps(16))
            .unwrap();
        assert!(slices > 1, "a 16-step quantum must preempt the root");
        assert_eq!(full.succeeded, sliced.succeeded);
        assert_eq!(full.bindings, sliced.bindings);
        assert_eq!(full.counters, sliced.counters);
        assert_eq!(full.spawned_tasks, sliced.spawned_tasks);
    }

    #[test]
    fn hard_budget_errors_through_the_executor() {
        #[cfg(feature = "failpoints")]
        let _shared = fault_shared();
        let program = parse_program(FIB).unwrap();
        let mut exec = ParExecutor::new(
            &program,
            ParConfig {
                threads: 2,
                granularity: Granularity::AlwaysSpawn,
                ..ParConfig::default()
            },
        );
        let (goal, vars) = granlog_ir::parser::parse_term("fib(18, X)").unwrap();
        let err = exec
            .run_goal_budgeted(&goal, &vars, &Budget::hard_steps(10))
            .unwrap_err();
        assert!(matches!(err, EngineError::BudgetExceeded { .. }), "{err}");
        // The executor (and its machine pool) stays usable.
        let again = exec.run_query("fib(10, X)").unwrap();
        assert!(again.succeeded);
    }

    #[test]
    fn deep_nested_spawns_join_without_deadlock() {
        // A left-leaning spawn chain deeper than the thread count: joiners
        // must help-run pending jobs rather than block.
        let src = r#"
            chain(0).
            chain(N) :- N > 0, N1 is N - 1, chain(N1) & true.
        "#;
        let out = run(src, "chain(64)", 2, Granularity::AlwaysSpawn);
        assert!(out.succeeded);
        assert_eq!(out.spawned_tasks, 128);
    }

    #[cfg(feature = "failpoints")]
    mod fault {
        use super::*;
        use granlog_fault::Action;

        fn fresh_executor(program: &Program) -> ParExecutor<'_> {
            ParExecutor::new(
                program,
                ParConfig {
                    threads: 2,
                    granularity: Granularity::AlwaysSpawn,
                    ..ParConfig::default()
                },
            )
        }

        #[test]
        fn a_panicking_arm_errors_the_join_instead_of_hanging_it() {
            let _excl = fault_exclusive();
            granlog_fault::disarm_all();
            granlog_fault::arm("par.spawn", Action::Panic, 1.0);
            let program = parse_program(FIB).unwrap();
            let mut exec = fresh_executor(&program);
            let err = exec.run_query("fib(12, X)").unwrap_err();
            granlog_fault::disarm_all();
            assert!(matches!(err, EngineError::WorkerPanic(_)), "{err}");
            assert!(err.to_string().contains("par.spawn"), "{err}");
            // The executor survives: the panicking arms' machines were
            // discarded mid-unwind, fresh ones take their place.
            let out = exec.run_query("fib(10, X)").unwrap();
            assert!(out.succeeded);
            assert_eq!(out.binding("X").unwrap().to_string(), "55");
        }

        #[test]
        fn an_injected_spawn_fault_is_typed_and_recoverable() {
            let _excl = fault_exclusive();
            granlog_fault::disarm_all();
            granlog_fault::arm("par.spawn", Action::Error, 1.0);
            let program = parse_program(FIB).unwrap();
            let mut exec = fresh_executor(&program);
            let err = exec.run_query("fib(12, X)").unwrap_err();
            granlog_fault::disarm_all();
            assert_eq!(err, EngineError::Fault("par.spawn"));
            assert!(exec.run_query("fib(8, X)").unwrap().succeeded);
        }

        #[test]
        fn an_injected_join_fault_is_typed_and_recoverable() {
            let _excl = fault_exclusive();
            granlog_fault::disarm_all();
            granlog_fault::arm("par.join", Action::Error, 1.0);
            let program = parse_program(FIB).unwrap();
            let mut exec = fresh_executor(&program);
            let err = exec.run_query("fib(12, X)").unwrap_err();
            granlog_fault::disarm_all();
            assert_eq!(err, EngineError::Fault("par.join"));
            assert!(exec.run_query("fib(8, X)").unwrap().succeeded);
        }
    }
}
